//! Executing algorithm DAGs on the real runtime.
//!
//! The strands of a [`BuiltAlgorithm`] carry indices
//! into a table of [`BlockOp`]s; this module lowers the algorithm DAG plus that
//! table into the dataflow executor of `nd-runtime` — in two forms:
//!
//! * **Compiled (non-boxed), the default.**  [`compile_algorithm`] resolves every
//!   block operation's `Rect`s into raw [`MatPtr`] views once, stores them in a
//!   [`CompiledOp`] table, and builds a reusable
//!   [`CompiledGraph`] whose CSR successor arena and
//!   atomic dependency counters are shared across executions.  Strands dispatch
//!   by index through the enum — no heap-boxed closure per strand, no per-task
//!   mutex — and the same [`CompiledAlgorithm`] can be executed any number of
//!   times (build → execute → execute → …), paying DRS + graph construction
//!   exactly once.  [`run`] and the `*_parallel` drivers use this path.
//! * **Boxed (builder) form.**  [`build_task_graph`] produces the classic
//!   closure-carrying [`TaskGraph`] for callers that want to mix algorithm
//!   strands with ad-hoc closures.  No algorithm in this crate needs it any
//!   more — all seven (including LU, whose runtime pivot vector now lives in
//!   a lock-free [`PivotStore`] instead of per-panel mutex slots) dispatch
//!   through the compiled path.
//!
//! # Safety
//!
//! The block kernels of `nd-linalg` write through raw [`MatPtr`] views.  The safety
//! argument for calling them from concurrently running worker threads is the central
//! invariant of this repository: **the algorithm DAG produced by the DAG Rewriting
//! System orders every pair of conflicting block accesses**, and the dataflow
//! executor never starts a task before all of its predecessors have finished.  The
//! correctness tests in every algorithm module validate the invariant end-to-end by
//! comparing parallel results against the sequential reference kernels.

use crate::common::{BlockOp, BuiltAlgorithm, Rect};
use nd_core::dag::AlgorithmDag;
use nd_linalg::getrf::{self, PivotStore};
use nd_linalg::matrix::{MatPtr, Matrix};
use nd_linalg::tile::{TileMatrix, TileSubView, TileView};
use nd_linalg::{fw, gemm, lcs, potrf, trsm};
use nd_runtime::dataflow::{
    CompiledGraph, ExecStats, PersistentRun, Placement, SteadyStats, TaskGraph, TaskTable,
};
use nd_runtime::fault::{RunBudget, RunError};
use nd_runtime::pool::{with_pack_scratch, ThreadPool};
use std::sync::{Arc, OnceLock};

/// How an execution context's matrices are stored in memory.
///
/// The layout is a property of the *bound data*, not of the algorithm: the
/// same [`BuiltAlgorithm`] compiles against either layout and produces
/// bit-identical results (packing moves bytes, never changes a floating-point
/// operation).  `Tiled` is the cache-friendly choice the paper's locality
/// bounds assume: every base-case operand is one contiguous slab.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Layout {
    /// One row-major allocation per matrix; base-case blocks are strided views.
    RowMajor,
    /// Tile-packed (block-major) storage; tile-aligned base-case blocks are
    /// contiguous `b × b` slabs (see [`TileMatrix`]).
    Tiled,
}

/// One matrix of an execution context: a raw view in either layout.
#[derive(Clone, Copy)]
pub enum MatSlot {
    /// A strided row-major view.
    Row(MatPtr),
    /// A tile-addressed view of tile-packed storage.
    Tiled(TileView),
}

/// The runtime data an algorithm's block operations refer to.
#[derive(Clone)]
pub struct ExecContext {
    /// Raw views of the matrices (either layout), indexed by [`Rect::mat`].
    pub mats: Vec<MatSlot>,
    /// First sequence (LCS).
    pub seq_s: Arc<Vec<u8>>,
    /// Second sequence (LCS).
    pub seq_t: Arc<Vec<u8>>,
    /// Runtime pivot slots (LU); empty for every other algorithm.
    pub pivots: Arc<PivotStore>,
}

impl ExecContext {
    /// A context over row-major matrices only.
    pub fn from_matrices(mats: &mut [&mut Matrix]) -> Self {
        Self::with_pivots(mats, 0)
    }

    /// A context over row-major matrices plus the two LCS sequences.
    pub fn with_sequences(mats: &mut [&mut Matrix], s: Vec<u8>, t: Vec<u8>) -> Self {
        ExecContext {
            mats: mats
                .iter_mut()
                .map(|m| MatSlot::Row(m.as_ptr_view()))
                .collect(),
            seq_s: Arc::new(s),
            seq_t: Arc::new(t),
            pivots: Arc::new(PivotStore::new(0)),
        }
    }

    /// A context over row-major matrices plus a pre-sized pivot store of
    /// `piv_len` slots (LU: one slot per matrix column).
    pub fn with_pivots(mats: &mut [&mut Matrix], piv_len: usize) -> Self {
        ExecContext {
            mats: mats
                .iter_mut()
                .map(|m| MatSlot::Row(m.as_ptr_view()))
                .collect(),
            seq_s: Arc::new(Vec::new()),
            seq_t: Arc::new(Vec::new()),
            pivots: Arc::new(PivotStore::new(piv_len)),
        }
    }

    /// A context over tile-packed matrices only.
    pub fn tiled(mats: &mut [&mut TileMatrix]) -> Self {
        Self::tiled_with_pivots(mats, 0)
    }

    /// A context over tile-packed matrices plus the two LCS sequences.
    pub fn tiled_with_sequences(mats: &mut [&mut TileMatrix], s: Vec<u8>, t: Vec<u8>) -> Self {
        ExecContext {
            mats: mats
                .iter_mut()
                .map(|m| MatSlot::Tiled(m.as_tile_view()))
                .collect(),
            seq_s: Arc::new(s),
            seq_t: Arc::new(t),
            pivots: Arc::new(PivotStore::new(0)),
        }
    }

    /// A context over tile-packed matrices plus a pre-sized pivot store.
    pub fn tiled_with_pivots(mats: &mut [&mut TileMatrix], piv_len: usize) -> Self {
        ExecContext {
            mats: mats
                .iter_mut()
                .map(|m| MatSlot::Tiled(m.as_tile_view()))
                .collect(),
            seq_s: Arc::new(Vec::new()),
            seq_t: Arc::new(Vec::new()),
            pivots: Arc::new(PivotStore::new(piv_len)),
        }
    }

    /// Resolves a rectangle to a strided/contiguous [`MatPtr`] view.
    ///
    /// Row-major slots resolve to the classic strided block view.  Tiled
    /// slots resolve to a **contiguous tile base pointer** (stride = tile
    /// width) when the rectangle lies within one tile — the fast path every
    /// tile-aligned base case takes.
    ///
    /// # Panics
    /// Panics if a tiled slot's rectangle spans a tile seam (those operations
    /// must resolve through [`ExecContext::tile_view`] instead; `compile_op`
    /// does).
    fn block(&self, r: &Rect) -> MatPtr {
        match &self.mats[r.mat] {
            MatSlot::Row(m) => m.block(r.r, r.c, r.rows, r.cols),
            MatSlot::Tiled(v) => v.tile_block(r.r, r.c, r.rows, r.cols).unwrap_or_else(|| {
                panic!(
                    "block ({},{}) {}x{} of matrix {} spans a tile seam (tile = {}); \
                     tile-packed execution requires tile-aligned base-case blocks for this \
                     operation — bind the data with tile dimension == base-case size",
                    r.r,
                    r.c,
                    r.rows,
                    r.cols,
                    r.mat,
                    v.tile_dim()
                )
            }),
        }
    }

    /// `true` if this rectangle resolves to a contiguous single-tile view or
    /// a row-major block; `false` if it needs tile-seam addressing.
    fn spans_tile_seam(&self, r: &Rect) -> bool {
        match &self.mats[r.mat] {
            MatSlot::Row(_) => false,
            MatSlot::Tiled(v) => v.tile_block(r.r, r.c, r.rows, r.cols).is_none(),
        }
    }

    /// The tiled whole-matrix view of slot `mat`.
    ///
    /// # Panics
    /// Panics if the slot is row-major.
    fn tile_view(&self, mat: usize) -> TileView {
        match &self.mats[mat] {
            MatSlot::Tiled(v) => *v,
            MatSlot::Row(_) => panic!("matrix {mat} is row-major, not tile-packed"),
        }
    }
}

/// A block operation with its `Rect`s resolved into raw views — the non-boxed
/// per-strand work unit dispatched by [`OpTable`].
///
/// `Copy`, pointer-sized fields only: a whole algorithm's strands live in one
/// flat `Vec<CompiledOp>` instead of one heap allocation per strand.
#[derive(Clone, Copy)]
pub enum CompiledOp {
    /// `C += α·A·B`.
    Gemm {
        /// Output view.
        c: MatPtr,
        /// Left operand view.
        a: MatPtr,
        /// Right operand view.
        b: MatPtr,
        /// Scale factor.
        alpha: f64,
    },
    /// `C += α·A·Bᵀ`.
    GemmNt {
        /// Output view.
        c: MatPtr,
        /// Left operand view.
        a: MatPtr,
        /// Right operand view (transposed when applied).
        b: MatPtr,
        /// Scale factor.
        alpha: f64,
    },
    /// Solve `T·X = B` in place in `B`.
    TrsmLower {
        /// Triangular view.
        t: MatPtr,
        /// Right-hand side view.
        b: MatPtr,
    },
    /// Solve `X·Lᵀ = B` in place in `B`.
    TrsmRightLt {
        /// Triangular view.
        l: MatPtr,
        /// Right-hand side view.
        b: MatPtr,
    },
    /// In-place Cholesky factorization of a block.
    Potrf {
        /// The block view.
        a: MatPtr,
    },
    /// In-place partially pivoted LU of a panel (pivot slots live on the
    /// [`OpTable`]).
    LuPanel {
        /// The panel view.
        a: MatPtr,
        /// First pivot-store slot owned by this panel.
        piv: usize,
    },
    /// [`CompiledOp::LuPanel`] on a tall panel of a tile-packed matrix (the
    /// panel spans a column of tiles, so it runs through tile addressing —
    /// same generic kernel body, bit-identical result).
    LuPanelTiled {
        /// Tile-addressed panel view.
        a: TileSubView,
        /// First pivot-store slot owned by this panel.
        piv: usize,
    },
    /// Applies a panel's row interchanges to a block column.
    LuRowSwap {
        /// The block-column view.
        a: MatPtr,
        /// First pivot-store slot of the owning panel.
        piv: usize,
        /// Number of interchanges.
        len: usize,
    },
    /// [`CompiledOp::LuRowSwap`] on a tall block column of a tile-packed
    /// matrix.
    LuRowSwapTiled {
        /// Tile-addressed block-column view.
        a: TileSubView,
        /// First pivot-store slot of the owning panel.
        piv: usize,
        /// Number of interchanges.
        len: usize,
    },
    /// Solve `L·X = B` in place in `B` (unit lower-triangular `L`).
    TrsmUnitLower {
        /// Unit-lower-triangular view.
        l: MatPtr,
        /// Right-hand side view.
        b: MatPtr,
    },
    /// [`CompiledOp::Lcs`] on a tile-packed table (boundary reads cross tile
    /// seams, so the block runs through tile addressing).
    LcsTiled {
        /// Tile-addressed whole-table view.
        view: TileView,
        /// First row (inclusive).
        i0: usize,
        /// Last row (exclusive).
        i1: usize,
        /// First column (inclusive).
        j0: usize,
        /// Last column (exclusive).
        j1: usize,
    },
    /// [`CompiledOp::Fw1d`] on a tile-packed table.
    Fw1dTiled {
        /// Tile-addressed whole-table view.
        view: TileView,
        /// First time step (inclusive).
        t0: usize,
        /// Last time step (exclusive).
        t1: usize,
        /// First cell (inclusive).
        i0: usize,
        /// Last cell (exclusive).
        i1: usize,
    },
    /// One block of the LCS table (sequences live on the [`OpTable`]).
    Lcs {
        /// Whole-table view.
        view: MatPtr,
        /// First row (inclusive).
        i0: usize,
        /// Last row (exclusive).
        i1: usize,
        /// First column (inclusive).
        j0: usize,
        /// Last column (exclusive).
        j1: usize,
    },
    /// One block of the 1-D Floyd–Warshall table.
    Fw1d {
        /// Whole-table view.
        view: MatPtr,
        /// First time step (inclusive).
        t0: usize,
        /// Last time step (exclusive).
        t1: usize,
        /// First cell (inclusive).
        i0: usize,
        /// Last cell (exclusive).
        i1: usize,
    },
    /// Min-plus block update `X = min(X, U + V)`.
    FwUpdate {
        /// Updated view.
        x: MatPtr,
        /// Row-panel view.
        u: MatPtr,
        /// Column-panel view.
        v: MatPtr,
    },
    /// A strand with no runtime effect.
    Nop,
}

impl CompiledOp {
    /// Display names of the operation kinds, indexed by
    /// [`CompiledOp::kind_index`] (the trace side tables use them to label
    /// execution spans per strand).
    pub const KIND_NAMES: &'static [&'static str] = &[
        "gemm",
        "gemm_nt",
        "trsm_lower",
        "trsm_right_lt",
        "potrf",
        "lu_panel",
        "lu_panel_tiled",
        "lu_row_swap",
        "lu_row_swap_tiled",
        "trsm_unit_lower",
        "lcs_tiled",
        "fw1d_tiled",
        "lcs",
        "fw1d",
        "fw_update",
        "nop",
    ];

    /// The operation's kind discriminant, an index into
    /// [`CompiledOp::KIND_NAMES`].
    pub fn kind_index(&self) -> u16 {
        match self {
            CompiledOp::Gemm { .. } => 0,
            CompiledOp::GemmNt { .. } => 1,
            CompiledOp::TrsmLower { .. } => 2,
            CompiledOp::TrsmRightLt { .. } => 3,
            CompiledOp::Potrf { .. } => 4,
            CompiledOp::LuPanel { .. } => 5,
            CompiledOp::LuPanelTiled { .. } => 6,
            CompiledOp::LuRowSwap { .. } => 7,
            CompiledOp::LuRowSwapTiled { .. } => 8,
            CompiledOp::TrsmUnitLower { .. } => 9,
            CompiledOp::LcsTiled { .. } => 10,
            CompiledOp::Fw1dTiled { .. } => 11,
            CompiledOp::Lcs { .. } => 12,
            CompiledOp::Fw1d { .. } => 13,
            CompiledOp::FwUpdate { .. } => 14,
            CompiledOp::Nop => 15,
        }
    }
}

/// The non-boxed task table of one compiled algorithm: one [`CompiledOp`] per
/// graph task, dispatched by index through the enum.
pub struct OpTable {
    ops: Vec<CompiledOp>,
    seq_s: Arc<Vec<u8>>,
    seq_t: Arc<Vec<u8>>,
    pivots: Arc<PivotStore>,
    /// Scratch elements GEMM panel packing needs for the largest strided
    /// multiply in the table (0 = no strided multiply, packing never runs).
    /// Computed once at compile time; each worker's arena grows to it on the
    /// worker's first packed strand and is never touched by the allocator
    /// again.
    pack_len: usize,
}

impl TaskTable for OpTable {
    #[inline]
    fn run_task(&self, task: u32) {
        dispatch_op(
            self.ops[task as usize],
            &self.seq_s,
            &self.seq_t,
            &self.pivots,
            self.pack_len,
        );
    }

    #[inline]
    fn task_label(&self, task: u32) -> &'static str {
        CompiledOp::KIND_NAMES[self.ops[task as usize].kind_index() as usize]
    }
}

/// Runs one resolved block operation.
#[inline]
fn dispatch_op(op: CompiledOp, seq_s: &[u8], seq_t: &[u8], pivots: &PivotStore, pack_len: usize) {
    // SAFETY (for every unsafe kernel call below): the algorithm DAG orders
    // all conflicting block and pivot-slot accesses and the executor runs
    // each task after its predecessors — see the module-level safety section.
    match op {
        CompiledOp::Gemm { c, a, b, alpha } => unsafe {
            if a.is_contiguous() && b.is_contiguous() {
                gemm::gemm_block(c, a, b, alpha)
            } else {
                with_pack_scratch(pack_len, |s| gemm::gemm_block_packed(c, a, b, alpha, s))
            }
        },
        CompiledOp::GemmNt { c, a, b, alpha } => unsafe {
            if a.is_contiguous() && b.is_contiguous() {
                gemm::gemm_nt_block(c, a, b, alpha)
            } else {
                with_pack_scratch(pack_len, |s| gemm::gemm_nt_block_packed(c, a, b, alpha, s))
            }
        },
        CompiledOp::TrsmLower { t, b } => unsafe { trsm::trsm_lower_block_ptr(t, b) },
        CompiledOp::TrsmRightLt { l, b } => unsafe { trsm::trsm_right_lower_trans_block_ptr(l, b) },
        CompiledOp::Potrf { a } => unsafe { potrf::potrf_block_ptr(a) },
        CompiledOp::LuPanel { a, piv } => unsafe {
            let out = pivots.slice_mut(piv, a.cols());
            getrf::getrf_panel_block_into(a, out);
        },
        CompiledOp::LuPanelTiled { a, piv } => unsafe {
            // The tall panel spans a column of tiles.  Pack it into the
            // worker's scratch, factor the contiguous copy, and write it
            // back: copies are O(rows·b) tile-addressed accesses where
            // factoring in place would pay tile addressing on all
            // O(rows·b²) accesses — and copying changes no floating-point
            // operation, so pivots and factors stay bit-identical.
            use nd_linalg::MatView;
            let (rows, cols) = (MatView::rows(&a), MatView::cols(&a));
            with_pack_scratch(pack_len, |s| {
                for i in 0..rows {
                    for j in 0..cols {
                        s[i * cols + j] = a.get(i, j);
                    }
                }
                let panel = MatPtr::from_raw_parts(s.as_mut_ptr(), cols, rows, cols);
                let out = pivots.slice_mut(piv, cols);
                getrf::getrf_panel_block_into(panel, out);
                for i in 0..rows {
                    for j in 0..cols {
                        a.set(i, j, s[i * cols + j]);
                    }
                }
            });
        },
        CompiledOp::LuRowSwap { a, piv, len } => unsafe {
            getrf::swap_rows_block(a, pivots.slice(piv, len));
        },
        CompiledOp::LuRowSwapTiled { a, piv, len } => unsafe {
            getrf::swap_rows_block(a, pivots.slice(piv, len));
        },
        CompiledOp::TrsmUnitLower { l, b } => unsafe { getrf::trsm_unit_lower_block_ptr(l, b) },
        CompiledOp::Lcs {
            view,
            i0,
            i1,
            j0,
            j1,
        } => unsafe { lcs::lcs_block(view, seq_s, seq_t, i0, i1, j0, j1) },
        CompiledOp::LcsTiled {
            view,
            i0,
            i1,
            j0,
            j1,
        } => unsafe { lcs::lcs_block(view, seq_s, seq_t, i0, i1, j0, j1) },
        CompiledOp::Fw1d {
            view,
            t0,
            t1,
            i0,
            i1,
        } => unsafe { fw::fw1d_block(view, t0, t1, i0, i1) },
        CompiledOp::Fw1dTiled {
            view,
            t0,
            t1,
            i0,
            i1,
        } => unsafe { fw::fw1d_block(view, t0, t1, i0, i1) },
        CompiledOp::FwUpdate { x, u, v } => unsafe { fw::fw_update_block(x, u, v) },
        CompiledOp::Nop => {}
    }
}

/// Resolves one block operation against the runtime data.
fn compile_op(op: &BlockOp, ctx: &ExecContext) -> CompiledOp {
    match op {
        BlockOp::Gemm { c, a, b, alpha } => CompiledOp::Gemm {
            c: ctx.block(c),
            a: ctx.block(a),
            b: ctx.block(b),
            alpha: *alpha,
        },
        BlockOp::GemmNt { c, a, b, alpha } => CompiledOp::GemmNt {
            c: ctx.block(c),
            a: ctx.block(a),
            b: ctx.block(b),
            alpha: *alpha,
        },
        BlockOp::TrsmLower { t, b } => CompiledOp::TrsmLower {
            t: ctx.block(t),
            b: ctx.block(b),
        },
        BlockOp::TrsmRightLt { l, b } => CompiledOp::TrsmRightLt {
            l: ctx.block(l),
            b: ctx.block(b),
        },
        BlockOp::Potrf { a } => CompiledOp::Potrf { a: ctx.block(a) },
        BlockOp::LuPanel { a, piv } => {
            if ctx.spans_tile_seam(a) {
                CompiledOp::LuPanelTiled {
                    a: ctx.tile_view(a.mat).sub_view(a.r, a.c, a.rows, a.cols),
                    piv: *piv,
                }
            } else {
                CompiledOp::LuPanel {
                    a: ctx.block(a),
                    piv: *piv,
                }
            }
        }
        BlockOp::LuRowSwap { a, piv, len } => {
            if ctx.spans_tile_seam(a) {
                CompiledOp::LuRowSwapTiled {
                    a: ctx.tile_view(a.mat).sub_view(a.r, a.c, a.rows, a.cols),
                    piv: *piv,
                    len: *len,
                }
            } else {
                CompiledOp::LuRowSwap {
                    a: ctx.block(a),
                    piv: *piv,
                    len: *len,
                }
            }
        }
        BlockOp::TrsmUnitLower { l, b } => CompiledOp::TrsmUnitLower {
            l: ctx.block(l),
            b: ctx.block(b),
        },
        BlockOp::LcsBlock {
            table,
            i0,
            i1,
            j0,
            j1,
        } => match &ctx.mats[*table] {
            MatSlot::Row(m) => CompiledOp::Lcs {
                view: *m,
                i0: *i0,
                i1: *i1,
                j0: *j0,
                j1: *j1,
            },
            MatSlot::Tiled(v) => CompiledOp::LcsTiled {
                view: *v,
                i0: *i0,
                i1: *i1,
                j0: *j0,
                j1: *j1,
            },
        },
        BlockOp::Fw1dBlock {
            table,
            t0,
            t1,
            i0,
            i1,
        } => match &ctx.mats[*table] {
            MatSlot::Row(m) => CompiledOp::Fw1d {
                view: *m,
                t0: *t0,
                t1: *t1,
                i0: *i0,
                i1: *i1,
            },
            MatSlot::Tiled(v) => CompiledOp::Fw1dTiled {
                view: *v,
                t0: *t0,
                t1: *t1,
                i0: *i0,
                i1: *i1,
            },
        },
        BlockOp::FwUpdate { x, u, v } => CompiledOp::FwUpdate {
            x: ctx.block(x),
            u: ctx.block(u),
            v: ctx.block(v),
        },
        BlockOp::Nop => CompiledOp::Nop,
    }
}

/// An algorithm lowered to the reusable, non-boxed execution form: a compiled
/// graph (CSR arena + dependency counters) plus its operation table.
///
/// Build once with [`compile_algorithm`], then call
/// [`CompiledAlgorithm::execute`] as many times as needed — every execution
/// after the first skips DRS and graph construction entirely.  Note that the
/// block operations accumulate into the context's matrices, so re-running a
/// mutation-heavy algorithm (e.g. `C += A·B`) composes with whatever state the
/// previous run left behind; callers re-initialise the data between runs.
/// The operation table caches the context's raw [`MatPtr`] views, so the
/// matrices must stay alive and must never be reallocated (grown, replaced)
/// while the compiled algorithm exists — re-initialise them **in place**.
/// This is the same raw-view aliasing contract every executor in this
/// repository relies on (see the [`MatPtr`] type-level documentation).
pub struct CompiledAlgorithm {
    graph: Arc<CompiledGraph>,
    table: Arc<OpTable>,
    /// The persistent run state behind [`CompiledAlgorithm::execute_steady`],
    /// created on the first call (sized to that call's pool).
    runner: OnceLock<PersistentRun<OpTable>>,
}

impl CompiledAlgorithm {
    /// Executes the algorithm on a pool, blocking until every strand has run.
    /// The graph is left reset, ready for the next call.
    ///
    /// # Errors
    /// Returns [`RunError::Panicked`] if a strand panics; the run drains
    /// (remaining strands are claimed but not executed), the graph is left
    /// reset, and the error names the strand and its operation kind.  The
    /// matrices may hold partial results — re-initialise them before retrying.
    pub fn execute(&self, pool: &ThreadPool) -> Result<ExecStats, RunError> {
        self.graph.execute(pool, &self.table)
    }

    /// Like [`CompiledAlgorithm::execute`], with a per-run [`RunBudget`]
    /// (wall-clock deadline checked at every strand claim).
    ///
    /// # Errors
    /// Returns [`RunError::DeadlineExceeded`] if the budget expires mid-run,
    /// or [`RunError::Panicked`] if a strand panics.
    pub fn execute_with(
        &self,
        pool: &ThreadPool,
        budget: &RunBudget,
    ) -> Result<ExecStats, RunError> {
        self.graph.execute_with(pool, &self.table, budget)
    }

    /// Steady-state execution: like [`CompiledAlgorithm::execute`], but
    /// through a persistent run state created on the first call — every
    /// subsequent call performs **zero heap allocations** (the run state is
    /// re-armed in place, ready tasks are `(Arc, index)` pairs, GEMM packing
    /// reuses the per-worker scratch arenas, and the returned
    /// [`SteadyStats`] is `Copy`).
    ///
    /// # Panics
    /// Panics if called with a pool larger than the first call's pool (the
    /// per-worker state was sized to that).
    ///
    /// # Errors
    /// Returns [`RunError::Panicked`] if a strand panics; the run state and
    /// counters are left re-armed, so the next call executes normally.
    pub fn execute_steady(&self, pool: &ThreadPool) -> Result<SteadyStats, RunError> {
        self.runner
            .get_or_init(|| PersistentRun::new(&self.graph, &self.table, pool.num_threads()))
            .execute(pool)
    }

    /// Like [`CompiledAlgorithm::execute_steady`], with a per-run
    /// [`RunBudget`].
    ///
    /// # Errors
    /// Returns [`RunError::DeadlineExceeded`] if the budget expires mid-run,
    /// or [`RunError::Panicked`] if a strand panics.
    pub fn execute_steady_with(
        &self,
        pool: &ThreadPool,
        budget: &RunBudget,
    ) -> Result<SteadyStats, RunError> {
        self.runner
            .get_or_init(|| PersistentRun::new(&self.graph, &self.table, pool.num_threads()))
            .execute_with(pool, budget)
    }

    /// Scratch elements GEMM panel packing needs per worker (0 when every
    /// multiply operand is contiguous, e.g. on the tile-packed layout).
    /// Computed when the algorithm was compiled.
    pub fn pack_scratch_len(&self) -> usize {
        self.table.pack_len
    }

    /// Number of tasks (strands plus barrier vertices).
    pub fn task_count(&self) -> usize {
        self.graph.task_count()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// `true` if the dependency counters are at their initial values (always
    /// holds between executions).
    pub fn counters_are_reset(&self) -> bool {
        self.graph.counters_are_reset()
    }

    /// The compiled dependency graph (task indices equal DAG vertex indices).
    pub fn graph(&self) -> &Arc<CompiledGraph> {
        &self.graph
    }

    /// The operation table the graph executes against.  Exposed so callers
    /// that need a custom execution harness (e.g. a serving layer wrapping
    /// the table to inject deterministic faults on the production fault
    /// path) can drive [`CompiledGraph::execute_with`] themselves.
    pub fn op_table(&self) -> &Arc<OpTable> {
        &self.table
    }

    /// Per-task trace side tables this compiled form can supply by itself:
    /// operation kinds (from the operation table) and dependency edges (from
    /// the graph, for the critical-path estimate).  Pedigree and anchoring
    /// columns are filled in by [`crate::driver::trace_meta`] and the
    /// anchored executor, which hold the DAG and the placement.
    pub fn trace_meta(&self) -> nd_trace::TaskMeta {
        nd_trace::TaskMeta {
            op_kinds: self.table.ops.iter().map(|op| op.kind_index()).collect(),
            op_kind_names: CompiledOp::KIND_NAMES
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            edges: self.graph.edges(),
            ..nd_trace::TaskMeta::default()
        }
    }
}

/// Lowers an algorithm DAG plus its operation table into the reusable,
/// non-boxed execution form.
pub fn compile_algorithm(
    dag: &AlgorithmDag,
    ops: &[BlockOp],
    ctx: &ExecContext,
) -> CompiledAlgorithm {
    compile_algorithm_placed(dag, ops, ctx, Vec::new())
}

/// Like [`compile_algorithm`], with per-task placement constraints (the
/// anchored executor of `nd-exec` routes every strand to its subcluster this
/// way).
///
/// # Panics
/// Panics if `placement` is non-empty and its length differs from the DAG's
/// vertex count.
pub fn compile_algorithm_placed(
    dag: &AlgorithmDag,
    ops: &[BlockOp],
    ctx: &ExecContext,
    placement: Vec<Placement>,
) -> CompiledAlgorithm {
    let lowered = nd_runtime::lower::lower_dag(dag, placement);
    let compiled_ops: Vec<CompiledOp> = lowered
        .op_tags
        .iter()
        .map(|tag| match tag {
            Some(op) => compile_op(&ops[*op as usize], ctx),
            None => CompiledOp::Nop,
        })
        .collect();
    // The packing high-water mark: the largest scratch any strided multiply in
    // this table will ask its worker's arena for.  Known here — at compile
    // time — so steady-state execution never grows the arena more than once.
    let pack_len = compiled_ops.iter().map(op_pack_len).max().unwrap_or(0);
    CompiledAlgorithm {
        graph: Arc::new(lowered.graph),
        table: Arc::new(OpTable {
            ops: compiled_ops,
            seq_s: Arc::clone(&ctx.seq_s),
            seq_t: Arc::clone(&ctx.seq_t),
            pivots: Arc::clone(&ctx.pivots),
            pack_len,
        }),
        runner: OnceLock::new(),
    }
}

/// Scratch elements `op` will ask its worker's packing arena for (0 when the
/// operation never packs).
fn op_pack_len(op: &CompiledOp) -> usize {
    match op {
        CompiledOp::Gemm { c, a, b, .. } | CompiledOp::GemmNt { c, a, b, .. }
            if !(a.is_contiguous() && b.is_contiguous()) =>
        {
            gemm::gemm_pack_len(c.rows(), c.cols(), a.cols())
        }
        CompiledOp::LuPanelTiled { a, .. } => {
            nd_linalg::MatView::rows(a) * nd_linalg::MatView::cols(a)
        }
        _ => 0,
    }
}

/// Builds the runtime closure for one block operation (the boxed form; the
/// compiled path goes through [`compile_algorithm`] instead).
pub fn op_closure(op: &BlockOp, ctx: &ExecContext) -> Box<dyn FnMut() + Send + 'static> {
    let compiled = compile_op(op, ctx);
    let pack_len = op_pack_len(&compiled);
    let (seq_s, seq_t) = (Arc::clone(&ctx.seq_s), Arc::clone(&ctx.seq_t));
    let pivots = Arc::clone(&ctx.pivots);
    Box::new(move || dispatch_op(compiled, &seq_s, &seq_t, &pivots, pack_len))
}

/// Lowers an algorithm DAG plus its operation table into a runnable [`TaskGraph`]
/// (the boxed builder form).
pub fn build_task_graph(dag: &AlgorithmDag, ops: &[BlockOp], ctx: &ExecContext) -> TaskGraph {
    nd_runtime::lower::lower_dag_boxed(dag, |op| op_closure(&ops[op as usize], ctx))
}

/// Executes a built algorithm on a pool against the given runtime data
/// (compiles the non-boxed form and runs it once; to amortise construction,
/// keep the [`CompiledAlgorithm`] from [`compile_algorithm`] and re-execute it).
/// Thin alias for [`crate::driver::run_once`], the shared driver layer.
///
/// # Errors
/// Returns [`RunError::Panicked`] if a strand panics (see
/// [`CompiledAlgorithm::execute`]).
pub fn run(
    pool: &ThreadPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
) -> Result<ExecStats, RunError> {
    crate::driver::run_once(pool, built, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::dag::AlgorithmDag;
    use nd_core::spawn_tree::NodeId;
    use nd_runtime::dataflow::execute_graph;

    #[test]
    fn build_graph_preserves_shape() {
        let mut dag = AlgorithmDag::new();
        let a = dag.add_strand(NodeId(0), 1, 1, Some(0), "a".into());
        let bar = dag.add_barrier();
        let b = dag.add_strand(NodeId(1), 1, 1, Some(1), "b".into());
        dag.add_edge(a, bar);
        dag.add_edge(bar, b);
        let ops = vec![BlockOp::Nop, BlockOp::Nop];
        let mut m = Matrix::zeros(2, 2);
        let ctx = ExecContext::from_matrices(&mut [&mut m]);
        let graph = build_task_graph(&dag, &ops, &ctx);
        assert_eq!(graph.task_count(), 3);
        assert_eq!(graph.edge_count(), 2);
        assert!(graph.is_acyclic());
        let compiled = compile_algorithm(&dag, &ops, &ctx);
        assert_eq!(compiled.task_count(), 3);
        assert_eq!(compiled.edge_count(), 2);
    }

    #[test]
    fn gemm_op_executes_on_pool() {
        let pool = ThreadPool::new(2);
        let a = Matrix::random(8, 8, 1);
        let b = Matrix::random(8, 8, 2);
        let mut c = Matrix::zeros(8, 8);
        let expected = a.matmul(&b);

        let mut am = a.clone();
        let mut bm = b.clone();
        let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
        let mut dag = AlgorithmDag::new();
        dag.add_strand(NodeId(0), 1, 1, Some(0), String::new());
        let ops = vec![BlockOp::Gemm {
            c: Rect::new(0, 0, 0, 8, 8),
            a: Rect::new(1, 0, 0, 8, 8),
            b: Rect::new(2, 0, 0, 8, 8),
            alpha: 1.0,
        }];
        let graph = build_task_graph(&dag, &ops, &ctx);
        execute_graph(&pool, graph).unwrap();
        assert!(c.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn compiled_and_boxed_modes_agree_bitwise() {
        let pool = ThreadPool::new(4);
        let a = Matrix::random(16, 16, 3);
        let b = Matrix::random(16, 16, 4);

        let mut dag = AlgorithmDag::new();
        let g0 = dag.add_strand(NodeId(0), 1, 1, Some(0), String::new());
        let g1 = dag.add_strand(NodeId(1), 1, 1, Some(1), String::new());
        dag.add_edge(g0, g1); // two dependent quadrant updates
        let ops = vec![
            BlockOp::Gemm {
                c: Rect::new(0, 0, 0, 8, 8),
                a: Rect::new(1, 0, 0, 8, 8),
                b: Rect::new(2, 0, 0, 8, 8),
                alpha: 1.0,
            },
            BlockOp::Gemm {
                c: Rect::new(0, 0, 0, 8, 8),
                a: Rect::new(1, 0, 8, 8, 8),
                b: Rect::new(2, 8, 0, 8, 8),
                alpha: 1.0,
            },
        ];

        let mut c_boxed = Matrix::zeros(16, 16);
        {
            let mut am = a.clone();
            let mut bm = b.clone();
            let ctx = ExecContext::from_matrices(&mut [&mut c_boxed, &mut am, &mut bm]);
            execute_graph(&pool, build_task_graph(&dag, &ops, &ctx)).unwrap();
        }
        let mut c_compiled = Matrix::zeros(16, 16);
        {
            let mut am = a.clone();
            let mut bm = b.clone();
            let ctx = ExecContext::from_matrices(&mut [&mut c_compiled, &mut am, &mut bm]);
            compile_algorithm(&dag, &ops, &ctx).execute(&pool).unwrap();
        }
        assert_eq!(c_boxed.max_abs_diff(&c_compiled), 0.0);
    }
}
