//! # nd-algorithms — the paper's algorithms in the NP and ND models
//!
//! Every algorithm from Section 3 of the paper (plus the recursive matrix multiply
//! of Section 2) is expressed twice:
//!
//! * in the **NP model** — the classical divide-and-conquer formulation with `;`
//!   (serial) and `‖` (parallel) composition only, which introduces the artificial
//!   dependencies the paper sets out to remove, and
//! * in the **ND model** — the same spawn tree with the serial constructs replaced
//!   by typed **fire constructs** whose rule tables are taken from the paper
//!   (Eqs. 1, 4–8, 14, 17–21) or derived from the data dependencies where the
//!   paper's listing is ambiguous (each module documents its table).
//!
//! Each recursive algorithm is a [`FireProgram`]: a spawn recipe plus a
//! fire-rule table, taken through the executable frontend
//! ([`frontend::build_program`]: unfold → [validate](nd_core::fire::FireTable::validate)
//! → DRS) to a [`BuiltAlgorithm`] — the
//! spawn tree, the algorithm DAG produced by the DAG Rewriting System, and the table
//! of block operations attached to the strands.  The [`access`] tracker stays on
//! as the independent cross-check oracle for those DAGs (and as the builder for
//! the loop-blocked LU / 2-D Floyd–Warshall).  The same object feeds
//!
//! 1. the analysis passes of `nd-core` (work/span, `Q*`, `Q̂_α`, `α_max`),
//! 2. the simulated schedulers of `nd-sched`, and
//! 3. the real dataflow executor of `nd-runtime` (via [`exec`]), whose results are
//!    compared against the sequential kernels of `nd-linalg` in the tests.
//!
//! | module | algorithm | NP span | ND span (this repo) |
//! |--------|-----------|---------|---------------------|
//! | [`mm`] | recursive matrix multiply (MM/MMS) | Θ(n) | Θ(n) (same leaves, more ready parallelism) |
//! | [`trs`] | triangular system solve | Θ(n log n) | Θ(n) |
//! | [`cholesky`] | Cholesky factorization | Θ(n log² n) | Θ(n log n) (see module docs) |
//! | [`lu`] | LU with partial pivoting (blocked) | phase-serialised | dataflow (lookahead) |
//! | [`fw1d`] | 1-D Floyd–Warshall | Θ(n log n) | Θ(n) |
//! | [`fw2d`] | 2-D Floyd–Warshall (APSP, blocked) | phase-serialised | dataflow wavefront |
//! | [`lcs`] | longest common subsequence | Θ(n log n) | Θ(n) |

#![warn(rust_2018_idioms)]
#![deny(missing_docs)]

pub mod access;
pub mod cholesky;
pub mod common;
pub mod driver;
pub mod exec;
pub mod frontend;
pub mod fw1d;
pub mod fw2d;
pub mod lcs;
pub mod lu;
pub mod mm;
pub mod trs;

pub use common::{BlockOp, BuiltAlgorithm, Mode, Rect};
pub use frontend::{build_program, FireProgram, OpRecorder};
