//! Cholesky factorization — Section 3 of the paper (Eq. 10 / Eq. 11).
//!
//! `CHO(A)` computes the lower-triangular `L` with `A = L·Lᵀ` for a symmetric
//! positive-definite `A`.  The 2-way recursion factors the top-left quadrant,
//! solves a triangular system for the bottom-left panel (`L₁₀ ← A₁₀·L₀₀⁻ᵀ`),
//! applies the symmetric trailing update `A₁₁ −= L₁₀·L₁₀ᵀ`, and recurses on the
//! trailing quadrant:
//!
//! ```text
//! CHO(A) = ( CHO(A₀₀)  CT⤳  TRSR(A₁₀, L₀₀) )  CTMC⤳  ( SYRK(A₁₁, L₁₀)  MC⤳  CHO(A₁₁) )
//! ```
//!
//! In the NP model (Eq. 10) the four steps are serialised and the span is
//! `Θ(n log² n)`; with the fire constructs below the span drops to the optimal
//! `Θ(n)`.
//!
//! ## Fire-rule tables
//!
//! The paper's Eq. (11) rule listing is partially garbled in the source text this
//! reproduction works from, so every table below is re-derived from the data
//! dependencies, following exactly the procedure the paper demonstrates for TRS
//! (expand both endpoints one level and match producers of each quadrant with its
//! consumers).  The task kinds are: `CHO` (factor a diagonal block), `TRSR`
//! (right-solve `X·Lᵀ = B`), `SYRK` (`C −= A·Aᵀ`), `GNT` (`C −= A·Bᵀ`), and the
//! derived arrow types
//!
//! * `CT`   — CHO produces `L`, TRSR consumes it as its triangular operand;
//! * `CTMC` — the top pair feeds the bottom pair (`{+○2○ TS⤳ -○1○}`);
//! * `TS`   — TRSR produces `L₁₀`, SYRK consumes it;
//! * `MC`   — SYRK finishes the trailing block, CHO factors it;
//! * `RTM` / `RTN` — TRSR output consumed by a `GNT` as its left / transposed
//!   operand;
//! * `MT_R` — a `GNT` finishes a block, a TRSR solves on it;
//! * `TTR`  — the internal arrow of a TRSR (mirror of the TRS `2TM2T⤳`);
//! * `SYG` / `SYP` — the group / pair arrows of SYRK (mirrors of `MMG` / `MMP`).

use crate::common::{check_power_of_two_ratio, BlockOp, BuiltAlgorithm, Mode, Rect};
use crate::exec::{run, ExecContext};
use crate::frontend::{build_program, FireProgram, OpRecorder};
use crate::mm::register_mm_fire_types;
use nd_core::fire::{FireRuleSpec, FireTable};
use nd_core::program::{Composition, Expansion, NdProgram};
use nd_linalg::Matrix;
use nd_runtime::ThreadPool;

/// A task of the Cholesky program.
#[derive(Clone, Debug)]
pub enum ChoTask {
    /// Factor a diagonal block in place.
    Cho {
        /// The block.
        a: Rect,
    },
    /// Solve `X·Lᵀ = B` in place in `B`.
    TrsR {
        /// Right-hand side (overwritten with the solution).
        b: Rect,
        /// Lower-triangular operand.
        l: Rect,
    },
    /// `C −= A·Aᵀ` (symmetric trailing update; the full block is updated, only the
    /// lower triangle is subsequently read).
    Syrk {
        /// Updated block.
        c: Rect,
        /// Operand.
        a: Rect,
    },
    /// `C −= A·Bᵀ`.
    Gnt {
        /// Updated block.
        c: Rect,
        /// Left operand.
        a: Rect,
        /// Transposed operand.
        b: Rect,
    },
}

/// Registers the Cholesky fire types (plus the shared `MMG`/`MMP`).
pub fn register_cholesky_fire_types(fires: &mut FireTable) {
    register_mm_fire_types(fires);
    // RTM: TRSR output consumed by a GNT as its *left* operand.
    fires.define(
        "RTM",
        vec![
            FireRuleSpec::fire(&[1, 1, 1], "RTM", &[1, 1, 1]),
            FireRuleSpec::fire(&[1, 1, 1], "RTM", &[1, 1, 2]),
            FireRuleSpec::fire(&[1, 2, 1], "RTM", &[1, 2, 1]),
            FireRuleSpec::fire(&[1, 2, 1], "RTM", &[1, 2, 2]),
            FireRuleSpec::fire(&[2, 1], "RTM", &[2, 1, 1]),
            FireRuleSpec::fire(&[2, 1], "RTM", &[2, 1, 2]),
            FireRuleSpec::fire(&[2, 2], "RTM", &[2, 2, 1]),
            FireRuleSpec::fire(&[2, 2], "RTM", &[2, 2, 2]),
        ],
    );
    // RTN: TRSR output consumed by a GNT as its *transposed* operand.
    fires.define(
        "RTN",
        vec![
            FireRuleSpec::fire(&[1, 1, 1], "RTN", &[1, 1, 1]),
            FireRuleSpec::fire(&[1, 1, 1], "RTN", &[1, 2, 1]),
            FireRuleSpec::fire(&[1, 2, 1], "RTN", &[1, 1, 2]),
            FireRuleSpec::fire(&[1, 2, 1], "RTN", &[1, 2, 2]),
            FireRuleSpec::fire(&[2, 1], "RTN", &[2, 1, 1]),
            FireRuleSpec::fire(&[2, 1], "RTN", &[2, 2, 1]),
            FireRuleSpec::fire(&[2, 2], "RTN", &[2, 1, 2]),
            FireRuleSpec::fire(&[2, 2], "RTN", &[2, 2, 2]),
        ],
    );
    // MT_R: a GNT finishes a block, a TRSR solves on it.
    fires.define(
        "MT_R",
        vec![
            FireRuleSpec::fire(&[2, 1, 1], "MT_R", &[1, 1, 1]),
            FireRuleSpec::fire(&[2, 2, 1], "MT_R", &[1, 2, 1]),
            FireRuleSpec::fire(&[2, 1, 2], "MMP", &[1, 1, 2]),
            FireRuleSpec::fire(&[2, 2, 2], "MMP", &[1, 2, 2]),
        ],
    );
    // TTR: internal arrow of a TRSR (top column-half feeds the bottom column-half).
    fires.define(
        "TTR",
        vec![
            FireRuleSpec::fire(&[1, 2], "MT_R", &[1]),
            FireRuleSpec::fire(&[2, 2], "MT_R", &[2]),
        ],
    );
    // CT: CHO produces L, TRSR consumes it as its triangular operand.
    fires.define(
        "CT",
        vec![
            FireRuleSpec::fire(&[1, 1], "CT", &[1, 1, 1]),
            FireRuleSpec::fire(&[1, 1], "CT", &[1, 2, 1]),
            FireRuleSpec::fire(&[1, 2], "RTN", &[1, 1, 2]),
            FireRuleSpec::fire(&[1, 2], "RTN", &[1, 2, 2]),
            FireRuleSpec::fire(&[2, 2], "CT", &[2, 1]),
            FireRuleSpec::fire(&[2, 2], "CT", &[2, 2]),
        ],
    );
    // CTMC: the (CHO, TRSR) pair feeds the (SYRK, CHO) pair.
    fires.define("CTMC", vec![FireRuleSpec::fire(&[2], "TS", &[1])]);
    // TS: TRSR produces L₁₀, SYRK consumes it (as both operands).
    fires.define(
        "TS",
        vec![
            FireRuleSpec::fire(&[1, 1, 1], "TS", &[1, 1]),
            FireRuleSpec::fire(&[1, 1, 1], "RTN", &[1, 2]),
            FireRuleSpec::fire(&[1, 2, 1], "RTM", &[1, 2]),
            FireRuleSpec::fire(&[1, 2, 1], "TS", &[1, 3]),
            FireRuleSpec::fire(&[2, 1], "TS", &[2, 1]),
            FireRuleSpec::fire(&[2, 1], "RTN", &[2, 2]),
            FireRuleSpec::fire(&[2, 2], "RTM", &[2, 2]),
            FireRuleSpec::fire(&[2, 2], "TS", &[2, 3]),
        ],
    );
    // MC: SYRK finishes the trailing block, CHO factors it.
    fires.define(
        "MC",
        vec![
            FireRuleSpec::fire(&[2, 1], "MC", &[1, 1]),
            FireRuleSpec::fire(&[2, 2], "MT_R", &[1, 2]),
            FireRuleSpec::fire(&[2, 3], "SYP", &[2, 1]),
        ],
    );
    // SYG: the two contribution groups inside a SYRK.
    fires.define(
        "SYG",
        vec![
            FireRuleSpec::fire(&[1], "SYP", &[1]),
            FireRuleSpec::fire(&[2], "MMP", &[2]),
            FireRuleSpec::fire(&[3], "SYP", &[3]),
        ],
    );
    // SYP: two SYRKs accumulating into the same block.
    fires.define(
        "SYP",
        vec![
            FireRuleSpec::fire(&[2, 1], "SYP", &[1, 1]),
            FireRuleSpec::fire(&[2, 2], "MMP", &[1, 2]),
            FireRuleSpec::fire(&[2, 3], "SYP", &[1, 3]),
        ],
    );
}

fn cho_size(a: &Rect) -> u64 {
    a.area()
}
fn trsr_size(b: &Rect, l: &Rect) -> u64 {
    b.area() + (l.rows * (l.rows + 1) / 2) as u64
}
fn syrk_size(c: &Rect, a: &Rect) -> u64 {
    (c.rows * (c.rows + 1) / 2) as u64 + a.area()
}
fn gnt_size(c: &Rect, a: &Rect, b: &Rect) -> u64 {
    c.area() + a.area() + b.area()
}

/// The Cholesky program.
pub struct CholeskyProgram {
    /// Base-case block dimension.
    pub base: usize,
    /// NP or ND.
    pub mode: Mode,
    fires: FireTable,
    ops: OpRecorder,
}

impl CholeskyProgram {
    /// Creates the program with the Cholesky fire types registered.
    pub fn new(base: usize, mode: Mode) -> Self {
        let mut fires = FireTable::new();
        register_cholesky_fire_types(&mut fires);
        fires.resolve();
        CholeskyProgram {
            base,
            mode,
            fires,
            ops: OpRecorder::new(),
        }
    }

    fn strand(&self, op: BlockOp, work: u64, size: u64) -> Expansion<ChoTask> {
        self.ops.strand(work, size, op)
    }

    fn expand_cho(&self, a: &Rect) -> Expansion<ChoTask> {
        let d = a.rows;
        if d <= self.base {
            return self.strand(
                BlockOp::Potrf { a: *a },
                (d * d * d / 3).max(1) as u64,
                cho_size(a),
            );
        }
        let a00 = a.quadrant(0, 0);
        let a10 = a.quadrant(1, 0);
        let a11 = a.quadrant(1, 1);
        let cho00 = Composition::task(ChoTask::Cho { a: a00 });
        let trs10 = Composition::task(ChoTask::TrsR { b: a10, l: a00 });
        let syrk11 = Composition::task(ChoTask::Syrk { c: a11, a: a10 });
        let cho11 = Composition::task(ChoTask::Cho { a: a11 });
        match self.mode {
            Mode::Np => Expansion::compose(Composition::seq2(
                Composition::seq2(cho00, trs10),
                Composition::seq2(syrk11, cho11),
            )),
            Mode::Nd => Expansion::compose(Composition::fire(
                Composition::fire(cho00, self.fires.id("CT"), trs10),
                self.fires.id("CTMC"),
                Composition::fire(syrk11, self.fires.id("MC"), cho11),
            )),
        }
    }

    fn expand_trsr(&self, b: &Rect, l: &Rect) -> Expansion<ChoTask> {
        let d = l.rows;
        if d <= self.base {
            return self.strand(
                BlockOp::TrsmRightLt { l: *l, b: *b },
                (d * d * b.rows) as u64,
                trsr_size(b, l),
            );
        }
        let l00 = l.quadrant(0, 0);
        let l10 = l.quadrant(1, 0);
        let l11 = l.quadrant(1, 1);
        let b00 = b.quadrant(0, 0);
        let b01 = b.quadrant(0, 1);
        let b10 = b.quadrant(1, 0);
        let b11 = b.quadrant(1, 1);
        let trsr = |b: Rect, l: Rect| Composition::task(ChoTask::TrsR { b, l });
        let gnt = |c: Rect, a: Rect, b: Rect| Composition::task(ChoTask::Gnt { c, a, b });
        let pair0 = (trsr(b00, l00), gnt(b01, b00, l10));
        let pair1 = (trsr(b10, l00), gnt(b11, b10, l10));
        let bottom = Composition::par2(trsr(b01, l11), trsr(b11, l11));
        match self.mode {
            Mode::Np => Expansion::compose(Composition::seq2(
                Composition::par2(
                    Composition::seq2(pair0.0, pair0.1),
                    Composition::seq2(pair1.0, pair1.1),
                ),
                bottom,
            )),
            Mode::Nd => Expansion::compose(Composition::fire(
                Composition::par2(
                    Composition::fire(pair0.0, self.fires.id("RTM"), pair0.1),
                    Composition::fire(pair1.0, self.fires.id("RTM"), pair1.1),
                ),
                self.fires.id("TTR"),
                bottom,
            )),
        }
    }

    fn expand_syrk(&self, c: &Rect, a: &Rect) -> Expansion<ChoTask> {
        let d = c.rows;
        if d <= self.base {
            return self.strand(
                BlockOp::GemmNt {
                    c: *c,
                    a: *a,
                    b: *a,
                    alpha: -1.0,
                },
                (d * d * a.cols) as u64,
                syrk_size(c, a),
            );
        }
        let group = |k: usize| {
            Composition::Par(vec![
                Composition::task(ChoTask::Syrk {
                    c: c.quadrant(0, 0),
                    a: a.quadrant(0, k),
                }),
                Composition::task(ChoTask::Gnt {
                    c: c.quadrant(1, 0),
                    a: a.quadrant(1, k),
                    b: a.quadrant(0, k),
                }),
                Composition::task(ChoTask::Syrk {
                    c: c.quadrant(1, 1),
                    a: a.quadrant(1, k),
                }),
            ])
        };
        match self.mode {
            Mode::Np => Expansion::compose(Composition::seq2(group(0), group(1))),
            Mode::Nd => {
                Expansion::compose(Composition::fire(group(0), self.fires.id("SYG"), group(1)))
            }
        }
    }

    fn expand_gnt(&self, c: &Rect, a: &Rect, b: &Rect) -> Expansion<ChoTask> {
        let d = c.rows;
        if d <= self.base {
            return self.strand(
                BlockOp::GemmNt {
                    c: *c,
                    a: *a,
                    b: *b,
                    alpha: -1.0,
                },
                2 * (c.rows * c.cols * a.cols) as u64,
                gnt_size(c, a, b),
            );
        }
        let sub = |ci: usize, cj: usize, k: usize| {
            Composition::task(ChoTask::Gnt {
                c: c.quadrant(ci, cj),
                a: a.quadrant(ci, k),
                b: b.quadrant(cj, k),
            })
        };
        let group = |k: usize| {
            Composition::par2(
                Composition::par2(sub(0, 0, k), sub(0, 1, k)),
                Composition::par2(sub(1, 0, k), sub(1, 1, k)),
            )
        };
        match self.mode {
            Mode::Np => Expansion::compose(Composition::seq2(group(0), group(1))),
            Mode::Nd => {
                Expansion::compose(Composition::fire(group(0), self.fires.id("MMG"), group(1)))
            }
        }
    }
}

impl FireProgram for CholeskyProgram {
    fn recorder(&self) -> &OpRecorder {
        &self.ops
    }
    fn mode(&self) -> Mode {
        self.mode
    }
    fn max_construct_arity(&self) -> u8 {
        3 // the SYRK groups are ternary (SYRK ‖ GNT ‖ SYRK)
    }
}

impl NdProgram for CholeskyProgram {
    type Task = ChoTask;

    fn fire_table(&self) -> &FireTable {
        &self.fires
    }

    fn task_size(&self, t: &ChoTask) -> u64 {
        match t {
            ChoTask::Cho { a } => cho_size(a),
            ChoTask::TrsR { b, l } => trsr_size(b, l),
            ChoTask::Syrk { c, a } => syrk_size(c, a),
            ChoTask::Gnt { c, a, b } => gnt_size(c, a, b),
        }
    }

    fn expand(&self, t: &ChoTask) -> Expansion<ChoTask> {
        match t {
            ChoTask::Cho { a } => self.expand_cho(a),
            ChoTask::TrsR { b, l } => self.expand_trsr(b, l),
            ChoTask::Syrk { c, a } => self.expand_syrk(c, a),
            ChoTask::Gnt { c, a, b } => self.expand_gnt(c, a, b),
        }
    }

    fn task_label(&self, t: &ChoTask) -> Option<String> {
        Some(match t {
            ChoTask::Cho { a } => format!("CHO({})", a.rows),
            ChoTask::TrsR { l, .. } => format!("TRSR({})", l.rows),
            ChoTask::Syrk { c, .. } => format!("SYRK({})", c.rows),
            ChoTask::Gnt { c, .. } => format!("GNT({})", c.rows),
        })
    }
}

/// Builds the spawn tree, DAG and operation table for a Cholesky factorization of
/// an `n × n` matrix (matrix id 0).
pub fn build_cholesky(n: usize, base: usize, mode: Mode) -> BuiltAlgorithm {
    check_power_of_two_ratio(n, base);
    let program = CholeskyProgram::new(base, mode);
    let root = ChoTask::Cho {
        a: Rect::new(0, 0, 0, n, n),
    };
    build_program(
        &program,
        root,
        format!("cholesky-{}-n{}-b{}", mode.name(), n, base),
    )
}

/// Factors `a` in place in parallel: on return the lower triangle holds `L` (the
/// strict upper triangle is zeroed for convenience).
pub fn cholesky_parallel(pool: &ThreadPool, a: &mut Matrix, mode: Mode, base: usize) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let built = build_cholesky(n, base, mode);
    let ctx = ExecContext::from_matrices(&mut [a]);
    run(pool, &built, &ctx).expect("algorithm strand panicked");
    a.zero_upper_triangle();
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::work_span::{fit_power_law, WorkSpan};
    use nd_linalg::potrf::{cholesky_residual, potrf_naive};

    /// One compiled Cholesky graph re-factors the same SPD matrix (restored in
    /// place between runs) three times bit-identically, counters restored.
    #[test]
    fn compiled_cholesky_reuse_is_bit_identical() {
        let pool = nd_runtime::ThreadPool::new(4);
        let n = 32;
        let built = build_cholesky(n, 8, Mode::Nd);
        let spd = Matrix::random_spd(n, 31);
        let mut a = spd.clone();
        let ctx = ExecContext::from_matrices(&mut [&mut a]);
        let reference = crate::driver::execute_reuse_rounds(
            &pool,
            &built,
            &ctx,
            &mut a,
            3,
            |a, _| a.as_mut_slice().copy_from_slice(spd.as_slice()),
            |a, _| {
                let mut l = a.clone();
                l.zero_upper_triangle();
                l
            },
        );
        assert!(cholesky_residual(&reference, &spd) < 1e-9);
    }

    #[test]
    fn np_and_nd_share_leaves_and_work() {
        let np = build_cholesky(64, 8, Mode::Np);
        let nd = build_cholesky(64, 8, Mode::Nd);
        assert_eq!(np.dag.strand_count(), nd.dag.strand_count());
        assert_eq!(np.dag.work(), nd.dag.work());
        assert!(np.dag.is_acyclic());
        assert!(nd.dag.is_acyclic());
    }

    #[test]
    fn nd_span_is_much_smaller_than_np() {
        let sizes = [32usize, 64, 128, 256];
        let spans = |mode: Mode| -> Vec<(f64, f64)> {
            sizes
                .iter()
                .map(|&n| {
                    let ws = WorkSpan::of_dag(&build_cholesky(n, 8, mode).dag);
                    (n as f64, ws.span as f64)
                })
                .collect()
        };
        let np = spans(Mode::Np);
        let nd = spans(Mode::Nd);
        for (a, b) in np.iter().zip(nd.iter()) {
            assert!(b.1 <= a.1);
        }
        let (e_np, _) = fit_power_law(&np);
        let (e_nd, _) = fit_power_law(&nd);
        // NP carries a log² factor, ND is close to linear.
        assert!(e_nd < e_np - 0.1, "nd {e_nd} vs np {e_np}");
        assert!(
            e_nd < 1.35,
            "nd Cholesky span should be near-linear, got {e_nd}"
        );
    }

    #[test]
    fn parallel_cholesky_matches_sequential() {
        let pool = ThreadPool::new(4);
        for mode in [Mode::Np, Mode::Nd] {
            let n = 64;
            let a = Matrix::random_spd(n, 17);
            let mut l_ref = a.clone();
            potrf_naive(&mut l_ref);
            let mut l_par = a.clone();
            cholesky_parallel(&pool, &mut l_par, mode, 16);
            assert!(
                l_par.max_abs_diff(&l_ref) < 1e-8,
                "{mode:?} Cholesky diverged: {}",
                l_par.max_abs_diff(&l_ref)
            );
            assert!(cholesky_residual(&l_par, &a) < 1e-10);
        }
    }

    #[test]
    fn parallel_cholesky_small_base_case() {
        // Deep rule recursion across all eleven Cholesky fire types.
        let pool = ThreadPool::new(4);
        let n = 64;
        let a = Matrix::random_spd(n, 23);
        let mut l_ref = a.clone();
        potrf_naive(&mut l_ref);
        let mut l_par = a.clone();
        cholesky_parallel(&pool, &mut l_par, Mode::Nd, 4);
        assert!(l_par.max_abs_diff(&l_ref) < 1e-8);
    }

    #[test]
    fn nd_exposes_more_ready_parallelism() {
        let np = build_cholesky(128, 16, Mode::Np);
        let nd = build_cholesky(128, 16, Mode::Nd);
        assert!(nd.dag.max_ready_width() >= np.dag.max_ready_width());
    }
}
