//! The Triangular System Solver (TRS) — the paper's flagship example (Section 3,
//! Figures 6–8).
//!
//! `TRS(T, B)` solves `T·X = B` for a lower-triangular `T`, overwriting `B` with
//! `X`.  The 2-way divide-and-conquer recursion (Eq. 2) spawns two TRS subtasks on
//! the top half, two multiply-subtract (MMS) updates, and two TRS subtasks on the
//! bottom half.  In the NP model (Eq. 3) the halves are serialised and the span is
//! `Θ(n log n)`; in the ND model (Eq. 4) the serial constructs are replaced by the
//! typed fire constructs `TM⤳` and `2TM2T⤳` and the span drops to the optimal
//! `Θ(n)`.
//!
//! ## Fire-rule tables
//!
//! With the spawn-tree structure used here —
//!
//! ```text
//! TRS  = ( (TRS₀₀ TM⤳ MMS₁₀) ‖ (TRS₀₁ TM⤳ MMS₁₁) )  2TM2T⤳  ( TRS₁₀ ‖ TRS₁₁ )
//! MMS  = (4 multiplies ‖)  MMG⤳  (4 multiplies ‖)
//! ```
//!
//! the tables are (`+○` = source, `-○` = sink):
//!
//! * `TM` (a TRS producing `X`, an MMS reading `X` as its second operand) — exactly
//!   Eq. (8) of the paper:
//!   `{+111→111, +111→121, +121→112, +121→122, +21→211, +21→221, +22→212, +22→222}`,
//!   every rule recursing as `TM`.
//! * `2TM2T` — exactly Eq. (5): `{ +○1○2○ MT⤳ -○1○, +○2○2○ MT⤳ -○2○ }`.
//! * `MT` (an MMS finishing a block, a TRS solving on that block).  The paper's
//!   printed Eq. (8) block for `MT` is garbled in the source we reproduce from; the
//!   prose derivation ("the matrix updated by the source is the second argument in
//!   the sink") gives
//!   `{ +○2○1○1○ MT⤳ -○1○1○1○, +○2○1○2○ MT⤳ -○1○2○1○,
//!      +○2○2○1○ MMP⤳ -○1○1○2○, +○2○2○2○ MMP⤳ -○1○2○2○ }`:
//!   the final writer of each quadrant of the block precedes the sink subtask that
//!   consumes that quadrant (a TRS for the top quadrants, another MMS — hence the
//!   `MMP` pair type of [`crate::mm`] — for the bottom ones).
//! * `MMG` / `MMP` — the multiply types shared with [`crate::mm`].

use crate::common::{check_power_of_two_ratio, BlockOp, BuiltAlgorithm, Mode, Rect};
use crate::exec::{run, ExecContext};
use crate::frontend::{build_program, FireProgram, OpRecorder};
use crate::mm::{mm_composition, mm_size, mm_work, register_mm_fire_types, MmTask};
use nd_core::fire::{FireRuleSpec, FireTable};
use nd_core::program::{Composition, Expansion, NdProgram};
use nd_linalg::Matrix;
use nd_runtime::ThreadPool;

/// A task of the TRS program.
#[derive(Clone, Debug)]
pub enum TrsTask {
    /// Solve `T·X = B` in place in `B`.
    Trs {
        /// Lower-triangular block of `T`.
        t: Rect,
        /// Right-hand-side block of `B` (overwritten with `X`).
        b: Rect,
    },
    /// `C -= A·B` (the MMS update).
    Mms(MmTask),
}

/// Registers the TRS fire types (`TM`, `MT`, `2TM2T`) plus the shared MM types.
pub fn register_trs_fire_types(fires: &mut FireTable) {
    register_mm_fire_types(fires);
    // TM: TRS source produces X, MMS sink reads X as its second operand (Eq. 8).
    fires.define(
        "TM",
        vec![
            FireRuleSpec::fire(&[1, 1, 1], "TM", &[1, 1, 1]),
            FireRuleSpec::fire(&[1, 1, 1], "TM", &[1, 2, 1]),
            FireRuleSpec::fire(&[1, 2, 1], "TM", &[1, 1, 2]),
            FireRuleSpec::fire(&[1, 2, 1], "TM", &[1, 2, 2]),
            FireRuleSpec::fire(&[2, 1], "TM", &[2, 1, 1]),
            FireRuleSpec::fire(&[2, 1], "TM", &[2, 2, 1]),
            FireRuleSpec::fire(&[2, 2], "TM", &[2, 1, 2]),
            FireRuleSpec::fire(&[2, 2], "TM", &[2, 2, 2]),
        ],
    );
    // 2TM2T: the arrow between the top half and the bottom half of a TRS (Eq. 5).
    fires.define(
        "2TM2T",
        vec![
            FireRuleSpec::fire(&[1, 2], "MT", &[1]),
            FireRuleSpec::fire(&[2, 2], "MT", &[2]),
        ],
    );
    // MT: MMS source finishes a block, TRS sink solves on it (prose derivation of
    // Eq. 8; see the module documentation).
    fires.define(
        "MT",
        vec![
            FireRuleSpec::fire(&[2, 1, 1], "MT", &[1, 1, 1]),
            FireRuleSpec::fire(&[2, 1, 2], "MT", &[1, 2, 1]),
            FireRuleSpec::fire(&[2, 2, 1], "MMP", &[1, 1, 2]),
            FireRuleSpec::fire(&[2, 2, 2], "MMP", &[1, 2, 2]),
        ],
    );
}

/// Work of a base-case triangular solve (`d × d` triangle, `d × e` right-hand side).
pub fn trs_work(d: usize, e: usize) -> u64 {
    (d * d * e) as u64
}

/// Size of a TRS task: the triangle of `T` plus the right-hand-side block.
pub fn trs_size(t: &Rect, b: &Rect) -> u64 {
    (t.rows * (t.rows + 1) / 2) as u64 + b.area()
}

/// The TRS program.
pub struct TrsProgram {
    /// Base-case block dimension.
    pub base: usize,
    /// NP or ND.
    pub mode: Mode,
    fires: FireTable,
    ops: OpRecorder,
}

impl TrsProgram {
    /// Creates a program with the TRS and MM fire types registered.
    pub fn new(base: usize, mode: Mode) -> Self {
        let mut fires = FireTable::new();
        register_trs_fire_types(&mut fires);
        fires.resolve();
        TrsProgram {
            base,
            mode,
            fires,
            ops: OpRecorder::new(),
        }
    }

    fn expand_trs(&self, t: &Rect, b: &Rect) -> Expansion<TrsTask> {
        let d = t.rows;
        if d <= self.base {
            return self.ops.strand(
                trs_work(d, b.cols),
                trs_size(t, b),
                BlockOp::TrsmLower { t: *t, b: *b },
            );
        }
        let t00 = t.quadrant(0, 0);
        let t10 = t.quadrant(1, 0);
        let t11 = t.quadrant(1, 1);
        let b00 = b.quadrant(0, 0);
        let b01 = b.quadrant(0, 1);
        let b10 = b.quadrant(1, 0);
        let b11 = b.quadrant(1, 1);
        let trs = |t: Rect, b: Rect| Composition::task(TrsTask::Trs { t, b });
        let mms = |c: Rect, a: Rect, b: Rect| Composition::task(TrsTask::Mms(MmTask { c, a, b }));

        // Top half: solve the top block rows, update the bottom block rows.
        // Bottom half: solve the bottom block rows.
        let pair0 = (trs(t00, b00), mms(b10, t10, b00));
        let pair1 = (trs(t00, b01), mms(b11, t10, b01));
        let bottom = Composition::par2(trs(t11, b10), trs(t11, b11));
        match self.mode {
            Mode::Np => Composition::seq2(
                Composition::par2(
                    Composition::seq2(pair0.0, pair0.1),
                    Composition::seq2(pair1.0, pair1.1),
                ),
                bottom,
            ),
            Mode::Nd => Composition::fire(
                Composition::par2(
                    Composition::fire(pair0.0, self.fires.id("TM"), pair0.1),
                    Composition::fire(pair1.0, self.fires.id("TM"), pair1.1),
                ),
                self.fires.id("2TM2T"),
                bottom,
            ),
        }
        .into_expansion()
    }

    fn expand_mms(&self, task: &MmTask) -> Expansion<TrsTask> {
        let d = task.c.rows;
        if d <= self.base {
            return self.ops.strand(
                mm_work(task.c.rows, task.c.cols, task.a.cols),
                mm_size(task),
                BlockOp::Gemm {
                    c: task.c,
                    a: task.a,
                    b: task.b,
                    alpha: -1.0,
                },
            );
        }
        Expansion::compose(mm_composition(task, self.mode, &self.fires, |t| {
            Composition::task(TrsTask::Mms(t))
        }))
    }
}

impl FireProgram for TrsProgram {
    fn recorder(&self) -> &OpRecorder {
        &self.ops
    }
    fn mode(&self) -> Mode {
        self.mode
    }
}

/// Small helper turning a composition into an expansion (keeps `expand_trs` tidy).
trait IntoExpansion<T> {
    fn into_expansion(self) -> Expansion<T>;
}

impl<T> IntoExpansion<T> for Composition<T> {
    fn into_expansion(self) -> Expansion<T> {
        Expansion::compose(self)
    }
}

impl NdProgram for TrsProgram {
    type Task = TrsTask;

    fn fire_table(&self) -> &FireTable {
        &self.fires
    }

    fn task_size(&self, t: &TrsTask) -> u64 {
        match t {
            TrsTask::Trs { t, b } => trs_size(t, b),
            TrsTask::Mms(m) => mm_size(m),
        }
    }

    fn expand(&self, t: &TrsTask) -> Expansion<TrsTask> {
        match t {
            TrsTask::Trs { t, b } => self.expand_trs(t, b),
            TrsTask::Mms(m) => self.expand_mms(m),
        }
    }

    fn task_label(&self, t: &TrsTask) -> Option<String> {
        Some(match t {
            TrsTask::Trs { t, .. } => format!("TRS({})", t.rows),
            TrsTask::Mms(m) => format!("MMS({})", m.c.rows),
        })
    }
}

/// Builds the spawn tree, DAG and operation table for `TRS(T, B)` with `T` an
/// `n × n` lower-triangular matrix and `B` an `n × n` right-hand side
/// (matrix ids: `T = 0`, `B = 1`).
pub fn build_trs(n: usize, base: usize, mode: Mode) -> BuiltAlgorithm {
    check_power_of_two_ratio(n, base);
    let program = TrsProgram::new(base, mode);
    let root = TrsTask::Trs {
        t: Rect::new(0, 0, 0, n, n),
        b: Rect::new(1, 0, 0, n, n),
    };
    build_program(
        &program,
        root,
        format!("trs-{}-n{}-b{}", mode.name(), n, base),
    )
}

/// Solves `T·X = B` in parallel, overwriting `b` with the solution.
pub fn solve_parallel(pool: &ThreadPool, t: &Matrix, b: &mut Matrix, mode: Mode, base: usize) {
    let n = t.rows();
    assert_eq!(t.cols(), n);
    assert_eq!(b.rows(), n);
    assert_eq!(b.cols(), n, "this driver expects a square right-hand side");
    let built = build_trs(n, base, mode);
    let mut tm = t.clone();
    let ctx = ExecContext::from_matrices(&mut [&mut tm, b]);
    run(pool, &built, &ctx).expect("algorithm strand panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::work_span::{fit_power_law, WorkSpan};

    #[test]
    fn np_and_nd_share_leaves_and_work() {
        let np = build_trs(32, 8, Mode::Np);
        let nd = build_trs(32, 8, Mode::Nd);
        assert_eq!(np.dag.strand_count(), nd.dag.strand_count());
        assert_eq!(np.dag.work(), nd.dag.work());
        assert!(np.dag.is_acyclic());
        assert!(nd.dag.is_acyclic());
    }

    /// One compiled TRS graph re-solves three right-hand sides (restored in
    /// place between runs) bit-identically, with counters fully restored.
    #[test]
    fn compiled_trs_reuse_is_bit_identical() {
        let pool = ThreadPool::new(4);
        let n = 32;
        let built = build_trs(n, 8, Mode::Nd);
        let t = Matrix::random_lower_triangular(n, 21);
        let b0 = Matrix::random(n, n, 22);
        let mut tm = t.clone();
        let mut b = b0.clone();
        let ctx = crate::exec::ExecContext::from_matrices(&mut [&mut tm, &mut b]);
        let reference = crate::driver::execute_reuse_rounds(
            &pool,
            &built,
            &ctx,
            &mut b,
            3,
            |b, _| b.as_mut_slice().copy_from_slice(b0.as_slice()),
            |b, _| b.clone(),
        );
        let mut expected = b0.clone();
        nd_linalg::trsm::trsm_lower_naive(&t, &mut expected);
        assert!(reference.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn nd_span_is_strictly_smaller() {
        let np = WorkSpan::of_dag(&build_trs(64, 8, Mode::Np).dag);
        let nd = WorkSpan::of_dag(&build_trs(64, 8, Mode::Nd).dag);
        assert!(nd.span < np.span, "nd {} vs np {}", nd.span, np.span);
        assert_eq!(nd.work, np.work);
    }

    #[test]
    fn span_shapes_match_the_paper() {
        // NP span grows like n·log n (fitted exponent noticeably above 1);
        // ND span grows like n (fitted exponent ≈ 1).
        let sizes = [16usize, 32, 64, 128];
        let spans = |mode: Mode| -> Vec<(f64, f64)> {
            sizes
                .iter()
                .map(|&n| {
                    let ws = WorkSpan::of_dag(&build_trs(n, 8, mode).dag);
                    (n as f64, ws.span as f64)
                })
                .collect()
        };
        let (e_np, _) = fit_power_law(&spans(Mode::Np));
        let (e_nd, _) = fit_power_law(&spans(Mode::Nd));
        assert!(e_nd < e_np, "nd exponent {e_nd} should be below np {e_np}");
        assert!(
            e_nd < 1.25,
            "nd TRS span should be ~linear in n, fitted exponent {e_nd}"
        );
        assert!(
            e_np > 1.15,
            "np TRS span should carry a log factor, fitted exponent {e_np}"
        );
    }

    #[test]
    fn parallel_solve_matches_sequential_nd() {
        let pool = ThreadPool::new(4);
        for mode in [Mode::Np, Mode::Nd] {
            let n = 64;
            let t = Matrix::random_lower_triangular(n, 3);
            let x_true = Matrix::random(n, n, 4);
            let b = t.matmul(&x_true);
            let mut x = b.clone();
            solve_parallel(&pool, &t, &mut x, mode, 16);
            assert!(
                x.max_abs_diff(&x_true) < 1e-8,
                "{mode:?} parallel TRS diverged: {}",
                x.max_abs_diff(&x_true)
            );
        }
    }

    #[test]
    fn parallel_solve_small_base_case_stresses_the_rule_tables() {
        // A small base case exercises several levels of fire-rule rewriting; any
        // missing dependency shows up as a numerical error here.
        let pool = ThreadPool::new(4);
        let n = 64;
        let t = Matrix::random_lower_triangular(n, 7);
        let x_true = Matrix::random(n, n, 8);
        let b = t.matmul(&x_true);
        let mut x = b.clone();
        solve_parallel(&pool, &t, &mut x, Mode::Nd, 4);
        assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn ready_width_is_larger_in_nd() {
        let np = build_trs(64, 8, Mode::Np);
        let nd = build_trs(64, 8, Mode::Nd);
        assert!(nd.dag.max_ready_width() >= np.dag.max_ready_width());
    }
}
