//! Longest Common Subsequence (LCS) — Section 3 and Figure 11 of the paper.
//!
//! The LCS dynamic-programming table is solved by a 2-way divide-and-conquer
//! algorithm: split the table into quadrants `X00, X01, X10, X11`; `X01` and `X10`
//! depend only on parts of `X00`'s boundary, and `X11` on parts of `X01`'s and
//! `X10`'s boundaries.  In the NP model the three stages are serialised and the span
//! is `Θ(n log n)`; in the ND model the fire constructs `HV⤳`, `VH⤳` and the
//! boundary types `H⤳` (a block feeding the block to its *right* through its last
//! column) and `V⤳` (feeding the block *below* through its last row) reduce the
//! span to the optimal `Θ(n)` — the wavefront order of Figure 11b.
//!
//! The rule tables are exactly Eqs. (18)–(21) of the paper (the `VH⤳` table is
//! spelled out against this module's spawn-tree layout, where the source of `VH⤳`
//! is the subtree containing `X00, X01, X10`):
//!
//! ```text
//! HV⤳ = { +○      H⤳ -○1○ ,  +○      V⤳ -○2○ }
//! VH⤳ = { +○2○1○  V⤳ -○   ,  +○2○2○  H⤳ -○   }
//! H⤳  = { +○1○2○1○ H⤳ -○1○1○ ,  +○2○ H⤳ -○1○2○2○ }
//! V⤳  = { +○1○2○2○ V⤳ -○1○1○ ,  +○2○ V⤳ -○1○2○1○ }
//! ```

use crate::common::{check_power_of_two_ratio, BlockOp, BuiltAlgorithm, Mode};
use crate::exec::{run, ExecContext};
use crate::frontend::{build_program, FireProgram, OpRecorder};
use nd_core::fire::{FireRuleSpec, FireTable};
use nd_core::program::{Composition, Expansion, NdProgram};
use nd_linalg::Matrix;
use nd_runtime::dataflow::ExecStats;
use nd_runtime::ThreadPool;

/// One LCS task: a block of the dynamic-programming table, as 1-based half-open row
/// and column ranges.
#[derive(Clone, Copy, Debug)]
pub struct LcsTask {
    /// First row (inclusive, 1-based).
    pub i0: usize,
    /// Last row (exclusive).
    pub i1: usize,
    /// First column (inclusive, 1-based).
    pub j0: usize,
    /// Last column (exclusive).
    pub j1: usize,
}

impl LcsTask {
    fn rows(&self) -> usize {
        self.i1 - self.i0
    }
    fn cols(&self) -> usize {
        self.j1 - self.j0
    }
    fn quadrant(&self, qi: usize, qj: usize) -> LcsTask {
        let rm = self.i0 + self.rows() / 2;
        let cm = self.j0 + self.cols() / 2;
        LcsTask {
            i0: if qi == 0 { self.i0 } else { rm },
            i1: if qi == 0 { rm } else { self.i1 },
            j0: if qj == 0 { self.j0 } else { cm },
            j1: if qj == 0 { cm } else { self.j1 },
        }
    }
}

/// Registers the LCS fire types (`HV`, `VH`, `H`, `V`).
pub fn register_lcs_fire_types(fires: &mut FireTable) {
    fires.define(
        "H",
        vec![
            FireRuleSpec::fire(&[1, 2, 1], "H", &[1, 1]),
            FireRuleSpec::fire(&[2], "H", &[1, 2, 2]),
        ],
    );
    fires.define(
        "V",
        vec![
            FireRuleSpec::fire(&[1, 2, 2], "V", &[1, 1]),
            FireRuleSpec::fire(&[2], "V", &[1, 2, 1]),
        ],
    );
    fires.define(
        "HV",
        vec![
            FireRuleSpec::fire(&[], "H", &[1]),
            FireRuleSpec::fire(&[], "V", &[2]),
        ],
    );
    fires.define(
        "VH",
        vec![
            FireRuleSpec::fire(&[2, 1], "V", &[]),
            FireRuleSpec::fire(&[2, 2], "H", &[]),
        ],
    );
}

/// The LCS program over an `n × n` dynamic-programming table.
pub struct LcsProgram {
    /// Base-case block dimension.
    pub base: usize,
    /// NP or ND.
    pub mode: Mode,
    fires: FireTable,
    ops: OpRecorder,
}

impl LcsProgram {
    /// Creates the program with the LCS fire types registered.
    pub fn new(base: usize, mode: Mode) -> Self {
        let mut fires = FireTable::new();
        register_lcs_fire_types(&mut fires);
        fires.resolve();
        LcsProgram {
            base,
            mode,
            fires,
            ops: OpRecorder::new(),
        }
    }
}

impl FireProgram for LcsProgram {
    fn recorder(&self) -> &OpRecorder {
        &self.ops
    }
    fn mode(&self) -> Mode {
        self.mode
    }
}

impl NdProgram for LcsProgram {
    type Task = LcsTask;

    fn fire_table(&self) -> &FireTable {
        &self.fires
    }

    fn task_size(&self, t: &LcsTask) -> u64 {
        (t.rows() * t.cols()) as u64
    }

    fn expand(&self, t: &LcsTask) -> Expansion<LcsTask> {
        if t.rows() <= self.base {
            return self.ops.strand(
                2 * (t.rows() * t.cols()) as u64,
                (t.rows() * t.cols()) as u64,
                BlockOp::LcsBlock {
                    table: 0,
                    i0: t.i0,
                    i1: t.i1,
                    j0: t.j0,
                    j1: t.j1,
                },
            );
        }
        let x00 = Composition::task(t.quadrant(0, 0));
        let x01 = Composition::task(t.quadrant(0, 1));
        let x10 = Composition::task(t.quadrant(1, 0));
        let x11 = Composition::task(t.quadrant(1, 1));
        match self.mode {
            Mode::Np => Expansion::compose(Composition::Seq(vec![
                x00,
                Composition::par2(x01, x10),
                x11,
            ])),
            Mode::Nd => Expansion::compose(Composition::fire(
                Composition::fire(x00, self.fires.id("HV"), Composition::par2(x01, x10)),
                self.fires.id("VH"),
                x11,
            )),
        }
    }

    fn task_label(&self, t: &LcsTask) -> Option<String> {
        Some(format!("LCS({}x{})", t.rows(), t.cols()))
    }
}

/// Builds the spawn tree, DAG and operation table for an LCS instance on sequences
/// of length `n` (table matrix id 0, sized `(n+1) × (n+1)`).
pub fn build_lcs(n: usize, base: usize, mode: Mode) -> BuiltAlgorithm {
    check_power_of_two_ratio(n, base);
    let program = LcsProgram::new(base, mode);
    let root = LcsTask {
        i0: 1,
        i1: n + 1,
        j0: 1,
        j1: n + 1,
    };
    build_program(
        &program,
        root,
        format!("lcs-{}-n{}-b{}", mode.name(), n, base),
    )
}

/// Computes the LCS length of two equal-length sequences in parallel.  Returns the
/// LCS length and the executor statistics.
pub fn lcs_parallel(
    pool: &ThreadPool,
    s: &[u8],
    t: &[u8],
    mode: Mode,
    base: usize,
) -> (u64, ExecStats) {
    assert_eq!(
        s.len(),
        t.len(),
        "this driver expects equal-length sequences"
    );
    let n = s.len();
    let built = build_lcs(n, base, mode);
    let mut table = Matrix::zeros(n + 1, n + 1);
    let ctx = ExecContext::with_sequences(&mut [&mut table], s.to_vec(), t.to_vec());
    let stats = run(pool, &built, &ctx).expect("algorithm strand panicked");
    (table[(n, n)] as u64, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::work_span::{fit_power_law, WorkSpan};
    use nd_linalg::lcs::{lcs_naive, random_sequence};

    /// One compiled LCS graph recomputes the table (zeroed in place between
    /// runs) three times bit-identically, counters restored.
    #[test]
    fn compiled_lcs_reuse_is_bit_identical() {
        let pool = ThreadPool::new(4);
        let n = 64;
        let s = random_sequence(n, 71);
        let t = random_sequence(n, 72);
        let built = build_lcs(n, 16, Mode::Nd);
        let mut table = Matrix::zeros(n + 1, n + 1);
        let ctx = ExecContext::with_sequences(&mut [&mut table], s.clone(), t.clone());
        let reference = crate::driver::execute_reuse_rounds(
            &pool,
            &built,
            &ctx,
            &mut table,
            3,
            |table, _| table.as_mut_slice().fill(0.0),
            |table, _| table.clone(),
        );
        assert_eq!(reference[(n, n)] as u64, lcs_naive(&s, &t));
    }

    #[test]
    fn np_and_nd_share_leaves_and_work() {
        let np = build_lcs(64, 8, Mode::Np);
        let nd = build_lcs(64, 8, Mode::Nd);
        assert_eq!(np.dag.strand_count(), 64);
        assert_eq!(nd.dag.strand_count(), 64);
        assert_eq!(np.dag.work(), nd.dag.work());
        assert!(np.dag.is_acyclic());
        assert!(nd.dag.is_acyclic());
    }

    #[test]
    fn nd_span_is_smaller_and_linear() {
        let sizes = [32usize, 64, 128, 256];
        let spans = |mode: Mode| -> Vec<(f64, f64)> {
            sizes
                .iter()
                .map(|&n| {
                    let ws = WorkSpan::of_dag(&build_lcs(n, 8, mode).dag);
                    (n as f64, ws.span as f64)
                })
                .collect()
        };
        let np = spans(Mode::Np);
        let nd = spans(Mode::Nd);
        for (a, b) in np.iter().zip(nd.iter()) {
            assert!(b.1 <= a.1, "nd span must not exceed np span at n={}", a.0);
        }
        let (e_np, _) = fit_power_law(&np);
        let (e_nd, _) = fit_power_law(&nd);
        assert!(e_nd < e_np);
        assert!(
            e_nd < 1.2,
            "nd LCS span should be ~linear, got exponent {e_nd}"
        );
        assert!(
            e_np > 1.2,
            "np LCS span should carry a log factor, got {e_np}"
        );
    }

    #[test]
    fn nd_wavefront_width_exceeds_np() {
        let np = build_lcs(128, 8, Mode::Np);
        let nd = build_lcs(128, 8, Mode::Nd);
        assert!(nd.dag.max_ready_width() >= np.dag.max_ready_width());
    }

    #[test]
    fn parallel_lcs_matches_sequential() {
        let pool = ThreadPool::new(4);
        let s = random_sequence(128, 11);
        let t = random_sequence(128, 12);
        let expected = lcs_naive(&s, &t);
        for mode in [Mode::Np, Mode::Nd] {
            let (got, stats) = lcs_parallel(&pool, &s, &t, mode, 16);
            assert_eq!(got, expected, "{mode:?} LCS length mismatch");
            // At least one runnable task per 16x16 block (the NP DAG also carries
            // zero-work barrier vertices, so this is a lower bound).
            assert!(stats.tasks >= (128 / 16) * (128 / 16));
        }
    }

    #[test]
    fn parallel_lcs_with_tiny_base_case() {
        // Deep fire-rule recursion: every missing boundary dependency would corrupt
        // the table.
        let pool = ThreadPool::new(4);
        let s = random_sequence(64, 21);
        let t = random_sequence(64, 22);
        let expected = lcs_naive(&s, &t);
        let (got, _) = lcs_parallel(&pool, &s, &t, Mode::Nd, 2);
        assert_eq!(got, expected);
    }

    #[test]
    fn identical_sequences_have_full_length_lcs() {
        let pool = ThreadPool::new(2);
        let s = random_sequence(32, 33);
        let (got, _) = lcs_parallel(&pool, &s, &s, Mode::Nd, 8);
        assert_eq!(got, 32);
    }
}
