//! Recursive matrix multiplication (MM) and multiply-subtract (MMS) — Section 2 of
//! the paper.
//!
//! `MM(A, B, C)` computes `C += α·A·B` by splitting every matrix into quadrants and
//! spawning eight recursive multiplies; the two multiplies that write the same
//! quadrant of `C` must be ordered.  In the NP model the eight subtasks are split
//! into two groups of four with a serial construct between them; in the ND model the
//! serial construct is replaced by a fire construct so that only the *matching*
//! writers are ordered.
//!
//! ## Fire-rule table
//!
//! The paper's Eq. (1) writes the rule set as `{ +○1○ MM⤳ -○1○, +○2○ MM⤳ -○2○ }`,
//! applying the same two rules at every nesting level.  Taken literally, that rule
//! set leaves the *cross-group* writers of the same `C` quadrant unordered (the last
//! contribution of the source group and the first contribution of the sink group
//! race on the same memory), which a real executor cannot tolerate.  We therefore
//! split the construct into two named types with explicit pedigrees:
//!
//! * `MMG` — the arrow between the two groups of four inside one MM task:
//!   `{ +○1○1○ MMP⤳ -○1○1○, +○1○2○ MMP⤳ -○1○2○, +○2○1○ MMP⤳ -○2○1○, +○2○2○ MMP⤳ -○2○2○ }`
//!   (matching positions in the two groups write the same `C` quadrant);
//! * `MMP` — the arrow between two MM tasks that write the same `C` block:
//!   `{ +○2○x○y○ MMP⤳ -○1○x○y○ }` for the four quadrant positions `x, y ∈ {1, 2}`
//!   (the *last* writer of each sub-quadrant in the source precedes the *first*
//!   writer of the same sub-quadrant in the sink; everything else follows from the
//!   tasks' internal `MMG` arrows).
//!
//! The span of both the NP and ND versions is Θ(n) (the chain of contributions to
//! any one element of `C`), but the ND DAG exposes strictly more ready parallelism —
//! the property the space-bounded scheduler exploits (Section 4).

use crate::common::{check_power_of_two_ratio, BlockOp, BuiltAlgorithm, Mode, Rect};
use crate::exec::{run, ExecContext};
use crate::frontend::{build_program, FireProgram, OpRecorder};
use nd_core::fire::{FireRuleSpec, FireTable};
use nd_core::program::{Composition, Expansion, NdProgram};
use nd_linalg::Matrix;
use nd_runtime::ThreadPool;

/// One multiply task: `C += α·A·B` on the given blocks.
#[derive(Clone, Debug)]
pub struct MmTask {
    /// Output block.
    pub c: Rect,
    /// Left operand block.
    pub a: Rect,
    /// Right operand block.
    pub b: Rect,
}

/// Registers the MM fire types (`MMG`, `MMP`) into a fire table.
/// Shared with the TRS, Cholesky and other modules that contain MM subtasks.
pub fn register_mm_fire_types(fires: &mut FireTable) {
    fires.define(
        "MMG",
        vec![
            FireRuleSpec::fire(&[1, 1], "MMP", &[1, 1]),
            FireRuleSpec::fire(&[1, 2], "MMP", &[1, 2]),
            FireRuleSpec::fire(&[2, 1], "MMP", &[2, 1]),
            FireRuleSpec::fire(&[2, 2], "MMP", &[2, 2]),
        ],
    );
    fires.define(
        "MMP",
        vec![
            FireRuleSpec::fire(&[2, 1, 1], "MMP", &[1, 1, 1]),
            FireRuleSpec::fire(&[2, 1, 2], "MMP", &[1, 1, 2]),
            FireRuleSpec::fire(&[2, 2, 1], "MMP", &[1, 2, 1]),
            FireRuleSpec::fire(&[2, 2, 2], "MMP", &[1, 2, 2]),
        ],
    );
}

/// Builds the composition of one MM task's eight subtasks (shared with modules that
/// embed MM subtasks, e.g. TRS).  `wrap` lifts a sub-multiply into the caller's task
/// type.
pub fn mm_composition<T>(
    task: &MmTask,
    mode: Mode,
    fires: &FireTable,
    wrap: impl Fn(MmTask) -> Composition<T>,
) -> Composition<T> {
    let c = &task.c;
    let a = &task.a;
    let b = &task.b;
    let sub = |ci: usize, cj: usize, ak: usize, bk: usize| {
        wrap(MmTask {
            c: c.quadrant(ci, cj),
            a: a.quadrant(ci, ak),
            b: b.quadrant(bk, cj),
        })
    };
    // Group 1 uses the left half of A / top half of B (k = 0); group 2 the other.
    let group = |k: usize| {
        Composition::par2(
            Composition::par2(sub(0, 0, k, k), sub(0, 1, k, k)),
            Composition::par2(sub(1, 0, k, k), sub(1, 1, k, k)),
        )
    };
    match mode {
        Mode::Np => Composition::seq2(group(0), group(1)),
        Mode::Nd => Composition::fire(group(0), fires.id("MMG"), group(1)),
    }
}

/// Work of a base-case multiply on an `m × n × k` block.
pub fn mm_work(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Size (distinct memory locations) of a multiply task.
pub fn mm_size(t: &MmTask) -> u64 {
    t.c.area() + t.a.area() + t.b.area()
}

/// The MM / MMS program: `C += α·A·B` with quadrant recursion down to `base`.
pub struct MmProgram {
    /// Base-case block dimension.
    pub base: usize,
    /// NP or ND.
    pub mode: Mode,
    /// Scale factor (use `-1.0` for the paper's MMS).
    pub alpha: f64,
    fires: FireTable,
    ops: OpRecorder,
}

impl MmProgram {
    /// Creates a program with the MM fire types registered.
    pub fn new(base: usize, mode: Mode, alpha: f64) -> Self {
        let mut fires = FireTable::new();
        register_mm_fire_types(&mut fires);
        fires.resolve();
        MmProgram {
            base,
            mode,
            alpha,
            fires,
            ops: OpRecorder::new(),
        }
    }
}

impl FireProgram for MmProgram {
    fn recorder(&self) -> &OpRecorder {
        &self.ops
    }
    fn mode(&self) -> Mode {
        self.mode
    }
}

impl NdProgram for MmProgram {
    type Task = MmTask;

    fn fire_table(&self) -> &FireTable {
        &self.fires
    }

    fn task_size(&self, t: &MmTask) -> u64 {
        mm_size(t)
    }

    fn expand(&self, t: &MmTask) -> Expansion<MmTask> {
        let d = t.c.rows;
        if d <= self.base {
            return self.ops.strand(
                mm_work(t.c.rows, t.c.cols, t.a.cols),
                mm_size(t),
                BlockOp::Gemm {
                    c: t.c,
                    a: t.a,
                    b: t.b,
                    alpha: self.alpha,
                },
            );
        }
        Expansion::compose(mm_composition(t, self.mode, &self.fires, Composition::task))
    }

    fn task_label(&self, t: &MmTask) -> Option<String> {
        Some(format!(
            "MM{}({}x{})",
            if self.alpha < 0.0 { "S" } else { "" },
            t.c.rows,
            t.c.cols
        ))
    }
}

/// Builds the spawn tree, DAG and operation table for `C += α·A·B` on `n × n`
/// matrices (matrix ids: `C = 0`, `A = 1`, `B = 2`) — through the fire-rule
/// frontend ([`crate::frontend::build_program`]), like every recursive
/// algorithm in this crate.
pub fn build_mm(n: usize, base: usize, mode: Mode, alpha: f64) -> BuiltAlgorithm {
    check_power_of_two_ratio(n, base);
    let program = MmProgram::new(base, mode, alpha);
    let root = MmTask {
        c: Rect::new(0, 0, 0, n, n),
        a: Rect::new(1, 0, 0, n, n),
        b: Rect::new(2, 0, 0, n, n),
    };
    build_program(
        &program,
        root,
        format!("mm-{}-n{}-b{}", mode.name(), n, base),
    )
}

/// Computes `C += A·B` in parallel on the pool using the given model and base case.
pub fn multiply_parallel(
    pool: &ThreadPool,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    mode: Mode,
    base: usize,
) {
    let n = c.rows();
    assert_eq!(a.rows(), n);
    assert_eq!(b.cols(), n);
    assert_eq!(a.cols(), b.rows());
    let built = build_mm(n, base, mode, 1.0);
    let mut a = a.clone();
    let mut b = b.clone();
    let ctx = ExecContext::from_matrices(&mut [c, &mut a, &mut b]);
    run(pool, &built, &ctx).expect("algorithm strand panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::work_span::WorkSpan;

    #[test]
    fn np_and_nd_have_identical_leaves_and_work() {
        for n in [16usize, 32] {
            let np = build_mm(n, 8, Mode::Np, 1.0);
            let nd = build_mm(n, 8, Mode::Nd, 1.0);
            assert_eq!(np.dag.strand_count(), nd.dag.strand_count());
            assert_eq!(np.dag.work(), nd.dag.work());
            assert_eq!(np.ops.len(), nd.ops.len());
            assert!(np.dag.is_acyclic());
            assert!(nd.dag.is_acyclic());
        }
    }

    #[test]
    fn nd_span_never_exceeds_np_span_and_exposes_more_parallelism() {
        let np = build_mm(32, 4, Mode::Np, 1.0);
        let nd = build_mm(32, 4, Mode::Nd, 1.0);
        let ws_np = WorkSpan::of_dag(&np.dag);
        let ws_nd = WorkSpan::of_dag(&nd.dag);
        assert!(ws_nd.span <= ws_np.span);
        assert!(nd.dag.max_ready_width() >= np.dag.max_ready_width());
    }

    #[test]
    fn spans_are_linear_in_n() {
        // With the base case fixed, span(2n) / span(n) ≈ 2 for both models (MM has
        // Θ(n) span in the NP model already).
        for mode in [Mode::Np, Mode::Nd] {
            let s16 = WorkSpan::of_dag(&build_mm(16, 4, mode, 1.0).dag).span as f64;
            let s32 = WorkSpan::of_dag(&build_mm(32, 4, mode, 1.0).dag).span as f64;
            let ratio = s32 / s16;
            assert!(
                (1.8..=2.4).contains(&ratio),
                "{mode:?}: span ratio {ratio} not ≈ 2"
            );
        }
    }

    #[test]
    fn leaf_count_matches_recursion() {
        let built = build_mm(32, 8, Mode::Nd, 1.0);
        // (32/8)^3 = 64 base multiplies.
        assert_eq!(built.ops.len(), 64);
        assert_eq!(built.dag.strand_count(), 64);
    }

    #[test]
    fn parallel_multiply_matches_reference() {
        let pool = ThreadPool::new(4);
        for mode in [Mode::Np, Mode::Nd] {
            let a = Matrix::random(64, 64, 1);
            let b = Matrix::random(64, 64, 2);
            let mut c = Matrix::random(64, 64, 3);
            let mut expected = c.clone();
            nd_linalg::gemm::gemm_naive(&mut expected, &a, &b, 1.0, 1.0);
            multiply_parallel(&pool, &a, &b, &mut c, mode, 16);
            assert!(
                c.max_abs_diff(&expected) < 1e-9,
                "{mode:?} parallel multiply diverged"
            );
        }
    }

    /// One compiled graph executed three times: the DRS + graph construction
    /// runs once, every re-execution is bit-identical, and the dependency
    /// counters are fully restored after each run.
    #[test]
    fn compiled_mm_reuse_is_bit_identical() {
        let pool = ThreadPool::new(4);
        let n = 32;
        let built = build_mm(n, 8, Mode::Nd, 1.0);
        let a = Matrix::random(n, n, 11);
        let b = Matrix::random(n, n, 12);
        let mut c = Matrix::zeros(n, n);
        let mut am = a.clone();
        let mut bm = b.clone();
        let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
        let reference = crate::driver::execute_reuse_rounds(
            &pool,
            &built,
            &ctx,
            &mut c,
            3,
            // Reset C in place (the compiled table holds raw views into it).
            |c, _| c.as_mut_slice().fill(0.0),
            |c, _| c.clone(),
        );
        let mut expected = Matrix::zeros(n, n);
        nd_linalg::gemm::gemm_naive(&mut expected, &a, &b, 1.0, 0.0);
        assert!(reference.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn mms_subtracts() {
        let pool = ThreadPool::new(2);
        let n = 32;
        let built = build_mm(n, 8, Mode::Nd, -1.0);
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let mut c = Matrix::random(n, n, 7);
        let mut expected = c.clone();
        nd_linalg::gemm::gemm_naive(&mut expected, &a, &b, -1.0, 1.0);
        let mut am = a.clone();
        let mut bm = b.clone();
        let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
        run(&pool, &built, &ctx).expect("algorithm strand panicked");
        assert!(c.max_abs_diff(&expected) < 1e-9);
    }
}
