//! The shared driver layer: build once → compile once → execute many.
//!
//! Every algorithm in this crate follows the same lifecycle — build the
//! spawn tree + DAG + operation table ([`BuiltAlgorithm`]), bind the runtime
//! data ([`ExecContext`]), lower to the compiled, reusable, allocation-free
//! graph form ([`CompiledAlgorithm`]), and execute (flat, or placed under
//! `nd-exec`'s anchoring).  This module is the one place that lifecycle is
//! written down; the per-algorithm `*_parallel` drivers, the anchored
//! wrappers of `nd-exec`, the `exp_exec` benchmark sections and the
//! graph-reuse test harnesses all go through it instead of each carrying
//! their own copy (which is what the `mm`/`trs`/`cholesky`/`lcs`/`fw1d`
//! modules did before LU and 2-D Floyd–Warshall joined the compiled path).

use crate::common::BuiltAlgorithm;
use crate::exec::{compile_algorithm_placed, CompiledAlgorithm, ExecContext, Layout};
use nd_linalg::getrf::PivotStore;
use nd_linalg::tile::TileMatrix;
use nd_linalg::Matrix;
use nd_runtime::dataflow::{ExecStats, Placement};
use nd_runtime::fault::{RunBudget, RunError};
use nd_runtime::ThreadPool;
use nd_trace::{TaskMeta, Trace, TraceConfig, TraceSession};
use std::sync::Arc;

/// Lowers a built algorithm to its compiled form against `ctx` (no placement
/// constraints — the flat executor's fast path).
pub fn compile(built: &BuiltAlgorithm, ctx: &ExecContext) -> CompiledAlgorithm {
    compile_placed(built, ctx, Vec::new())
}

/// Lowers a built algorithm to its compiled form with per-task placement
/// constraints (the anchored executor of `nd-exec` routes every strand to its
/// subcluster this way).
pub fn compile_placed(
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
    placement: Vec<Placement>,
) -> CompiledAlgorithm {
    compile_algorithm_placed(&built.dag, &built.ops, ctx, placement)
}

/// One-shot execution: compile and run once on the flat pool.  To amortise
/// construction, keep the [`CompiledAlgorithm`] from [`compile`] and
/// re-execute it.
///
/// # Errors
/// Returns [`RunError::Panicked`] if a strand panics; the run drains and the
/// matrices may hold partial results.
pub fn run_once(
    pool: &ThreadPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
) -> Result<ExecStats, RunError> {
    compile(built, ctx).execute(pool)
}

/// Like [`run_once`], with a per-run [`RunBudget`] (wall-clock deadline
/// checked at every strand claim).
///
/// # Errors
/// Returns [`RunError::DeadlineExceeded`] if the budget expires mid-run, or
/// [`RunError::Panicked`] if a strand panics.
pub fn run_once_with(
    pool: &ThreadPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
    budget: &RunBudget,
) -> Result<ExecStats, RunError> {
    compile(built, ctx).execute_with(pool, budget)
}

/// The full per-task trace side tables for a built + compiled algorithm:
/// the compiled form supplies operation kinds and dependency edges, the DAG
/// supplies the pedigree column (each strand's spawn-tree node — the paper's
/// pedigree coordinate).  Anchoring columns stay empty here; the anchored
/// executor of `nd-exec` fills them from its placement.
pub fn trace_meta(built: &BuiltAlgorithm, compiled: &CompiledAlgorithm) -> TaskMeta {
    let mut meta = compiled.trace_meta();
    meta.home_nodes = built
        .dag
        .vertex_ids()
        .map(|v| match built.dag.vertex(v).tree_node() {
            Some(node) => node.0,
            None => u32::MAX,
        })
        .collect();
    meta
}

/// One-shot **traced** execution on the flat pool: compiles `built`, runs it
/// under a [`TraceSession`] on the pool's tracer, and returns the execution
/// statistics together with the finished [`Trace`] (per-strand spans plus
/// derived scheduler metrics, side tables attached).  Tracing is enabled only
/// for the duration of the run; the capacity knob is read from
/// [`nd_trace::CAPACITY_ENV`].
///
/// # Errors
/// Returns [`RunError::Panicked`] if a strand panics.  The trace is finished
/// and returned either way — a faulted run's trace shows the caught fault
/// inline (an `EventKind::Fault` instant on the recording worker's track).
pub fn run_once_traced(
    pool: &ThreadPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
) -> (Result<ExecStats, RunError>, Trace) {
    let compiled = compile(built, ctx);
    let session = TraceSession::start(pool.tracer(), TraceConfig::from_env());
    let stats = compiled.execute(pool);
    let trace = session.finish_with_meta(trace_meta(built, &compiled));
    (stats, trace)
}

/// The non-matrix runtime state an algorithm binds besides its matrices.
pub enum ContextExtras {
    /// Matrices only (MM, TRS, Cholesky, 2-D Floyd–Warshall).
    None,
    /// The two LCS sequences.
    Sequences(Vec<u8>, Vec<u8>),
    /// A pre-sized pivot store of the given length (LU).
    Pivots(usize),
}

/// What [`run_once_on_layout`] returns: the execution statistics plus the
/// pivot store the run wrote into (empty unless the algorithm binds
/// [`ContextExtras::Pivots`]).
pub struct LayoutRun {
    /// The underlying dataflow execution statistics.
    pub stats: ExecStats,
    /// The context's pivot store after the run.
    pub pivots: Arc<PivotStore>,
}

/// Binds row-major matrices into a context on the chosen layout.  For
/// [`Layout::Tiled`] the matrices are packed into tile-packed storage with
/// tile dimension `tile`; the returned storage must outlive the context (the
/// context holds raw views into it).
pub fn bind_layout(
    mats: &mut [&mut Matrix],
    tile: usize,
    layout: Layout,
    extras: ContextExtras,
) -> (Vec<TileMatrix>, ExecContext) {
    match layout {
        Layout::RowMajor => {
            let ctx = match extras {
                ContextExtras::None => ExecContext::from_matrices(mats),
                ContextExtras::Sequences(s, t) => ExecContext::with_sequences(mats, s, t),
                ContextExtras::Pivots(len) => ExecContext::with_pivots(mats, len),
            };
            (Vec::new(), ctx)
        }
        Layout::Tiled => {
            let mut tiles: Vec<TileMatrix> =
                mats.iter().map(|m| TileMatrix::pack(m, tile)).collect();
            let mut refs: Vec<&mut TileMatrix> = tiles.iter_mut().collect();
            let ctx = match extras {
                ContextExtras::None => ExecContext::tiled(&mut refs),
                ContextExtras::Sequences(s, t) => {
                    ExecContext::tiled_with_sequences(&mut refs, s, t)
                }
                ContextExtras::Pivots(len) => ExecContext::tiled_with_pivots(&mut refs, len),
            };
            (tiles, ctx)
        }
    }
}

/// The layout knob: executes `built` once against row-major matrices on
/// either layout.  For [`Layout::Tiled`] the matrices are packed into
/// tile-packed storage (tile dimension `tile`, normally the algorithm's
/// base-case size so every base block is one contiguous slab), executed, and
/// unpacked back — so results land in `mats` on both layouts and can be
/// compared bit-for-bit.  All seven algorithms run through this entry point
/// (their extras are [`ContextExtras`]).
pub fn run_once_on_layout(
    pool: &ThreadPool,
    built: &BuiltAlgorithm,
    mats: &mut [&mut Matrix],
    tile: usize,
    layout: Layout,
    extras: ContextExtras,
) -> LayoutRun {
    let (tiles, ctx) = bind_layout(mats, tile, layout, extras);
    let stats = run_once(pool, built, &ctx).expect("algorithm strand panicked");
    for (tile_mat, m) in tiles.iter().zip(mats.iter_mut()) {
        tile_mat.unpack_into(m);
    }
    LayoutRun {
        stats,
        pivots: Arc::clone(&ctx.pivots),
    }
}

/// The shared build-once / execute-many harness: compiles `built` once, then
/// runs `rounds` executions on `pool`.  `data` is the driver-owned runtime
/// state the context's raw views point into (output matrix, DP table, …).
/// Before each round `reinit` restores it **in place** (the compiled table
/// holds raw views, so buffers must never be reallocated); after each round
/// `capture` snapshots the result.
///
/// Asserts, every round, that every task ran and that the dependency
/// counters were restored, and that each round's snapshot is **bit-identical**
/// to the first.  Returns the first snapshot for comparison against an
/// oracle.
///
/// # Panics
/// Panics if `rounds == 0`, if a round loses tasks or leaves counters
/// unrestored, or if any re-execution is not bit-identical.
pub fn execute_reuse_rounds<D, S, R, C>(
    pool: &ThreadPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
    data: &mut D,
    rounds: usize,
    mut reinit: R,
    mut capture: C,
) -> S
where
    S: PartialEq + std::fmt::Debug,
    R: FnMut(&mut D, usize),
    C: FnMut(&D, usize) -> S,
{
    let compiled = compile(built, ctx);
    let mut reference: Option<S> = None;
    for round in 0..rounds {
        reinit(data, round);
        let stats = compiled.execute(pool).expect("algorithm strand panicked");
        assert_eq!(
            stats.tasks,
            compiled.task_count(),
            "round {round}: every task must run"
        );
        assert!(
            compiled.counters_are_reset(),
            "round {round}: counters must be restored"
        );
        let snapshot = capture(data, round);
        match &reference {
            None => reference = Some(snapshot),
            Some(r) => assert_eq!(
                &snapshot, r,
                "round {round}: re-execution must be bit-identical"
            ),
        }
    }
    reference.expect("execute_reuse_rounds needs at least one round")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Mode;
    use crate::mm::build_mm;
    use nd_linalg::Matrix;

    /// The layout knob: the same built algorithm executed against row-major
    /// and tile-packed bindings must produce bit-identical results.
    #[test]
    fn layout_knob_is_bit_identical_for_mm() {
        let pool = ThreadPool::new(4);
        let n = 32;
        let base = 8;
        let built = build_mm(n, base, Mode::Nd, 1.0);
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let mut results = Vec::new();
        for layout in [Layout::RowMajor, Layout::Tiled] {
            let mut c = Matrix::zeros(n, n);
            let mut am = a.clone();
            let mut bm = b.clone();
            let run = run_once_on_layout(
                &pool,
                &built,
                &mut [&mut c, &mut am, &mut bm],
                base,
                layout,
                ContextExtras::None,
            );
            assert!(run.stats.tasks > 0);
            results.push(c);
        }
        assert_eq!(
            results[0].max_abs_diff(&results[1]),
            0.0,
            "layouts must agree bit-for-bit"
        );
    }

    #[test]
    fn reuse_rounds_detects_counters_and_identity() {
        let pool = ThreadPool::new(2);
        let n = 16;
        let built = build_mm(n, 8, Mode::Nd, 1.0);
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        let mut c = Matrix::zeros(n, n);
        let mut am = a.clone();
        let mut bm = b.clone();
        let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
        let result = execute_reuse_rounds(
            &pool,
            &built,
            &ctx,
            &mut c,
            3,
            |c, _| c.as_mut_slice().fill(0.0),
            |c, _| c.clone(),
        );
        let mut expected = Matrix::zeros(n, n);
        nd_linalg::gemm::gemm_naive(&mut expected, &a, &b, 1.0, 0.0);
        assert!(result.max_abs_diff(&expected) < 1e-9);
    }
}
