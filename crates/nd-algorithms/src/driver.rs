//! The shared driver layer: build once → compile once → execute many.
//!
//! Every algorithm in this crate follows the same lifecycle — build the
//! spawn tree + DAG + operation table ([`BuiltAlgorithm`]), bind the runtime
//! data ([`ExecContext`]), lower to the compiled, reusable, allocation-free
//! graph form ([`CompiledAlgorithm`]), and execute (flat, or placed under
//! `nd-exec`'s anchoring).  This module is the one place that lifecycle is
//! written down; the per-algorithm `*_parallel` drivers, the anchored
//! wrappers of `nd-exec`, the `exp_exec` benchmark sections and the
//! graph-reuse test harnesses all go through it instead of each carrying
//! their own copy (which is what the `mm`/`trs`/`cholesky`/`lcs`/`fw1d`
//! modules did before LU and 2-D Floyd–Warshall joined the compiled path).

use crate::common::BuiltAlgorithm;
use crate::exec::{compile_algorithm_placed, CompiledAlgorithm, ExecContext};
use nd_runtime::dataflow::{ExecStats, Placement};
use nd_runtime::ThreadPool;

/// Lowers a built algorithm to its compiled form against `ctx` (no placement
/// constraints — the flat executor's fast path).
pub fn compile(built: &BuiltAlgorithm, ctx: &ExecContext) -> CompiledAlgorithm {
    compile_placed(built, ctx, Vec::new())
}

/// Lowers a built algorithm to its compiled form with per-task placement
/// constraints (the anchored executor of `nd-exec` routes every strand to its
/// subcluster this way).
pub fn compile_placed(
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
    placement: Vec<Placement>,
) -> CompiledAlgorithm {
    compile_algorithm_placed(&built.dag, &built.ops, ctx, placement)
}

/// One-shot execution: compile and run once on the flat pool.  To amortise
/// construction, keep the [`CompiledAlgorithm`] from [`compile`] and
/// re-execute it.
pub fn run_once(pool: &ThreadPool, built: &BuiltAlgorithm, ctx: &ExecContext) -> ExecStats {
    compile(built, ctx).execute(pool)
}

/// The shared build-once / execute-many harness: compiles `built` once, then
/// runs `rounds` executions on `pool`.  `data` is the driver-owned runtime
/// state the context's raw views point into (output matrix, DP table, …).
/// Before each round `reinit` restores it **in place** (the compiled table
/// holds raw views, so buffers must never be reallocated); after each round
/// `capture` snapshots the result.
///
/// Asserts, every round, that every task ran and that the dependency
/// counters were restored, and that each round's snapshot is **bit-identical**
/// to the first.  Returns the first snapshot for comparison against an
/// oracle.
///
/// # Panics
/// Panics if `rounds == 0`, if a round loses tasks or leaves counters
/// unrestored, or if any re-execution is not bit-identical.
pub fn execute_reuse_rounds<D, S, R, C>(
    pool: &ThreadPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
    data: &mut D,
    rounds: usize,
    mut reinit: R,
    mut capture: C,
) -> S
where
    S: PartialEq + std::fmt::Debug,
    R: FnMut(&mut D, usize),
    C: FnMut(&D, usize) -> S,
{
    let compiled = compile(built, ctx);
    let mut reference: Option<S> = None;
    for round in 0..rounds {
        reinit(data, round);
        let stats = compiled.execute(pool);
        assert_eq!(
            stats.tasks,
            compiled.task_count(),
            "round {round}: every task must run"
        );
        assert!(
            compiled.counters_are_reset(),
            "round {round}: counters must be restored"
        );
        let snapshot = capture(data, round);
        match &reference {
            None => reference = Some(snapshot),
            Some(r) => assert_eq!(
                &snapshot, r,
                "round {round}: re-execution must be bit-identical"
            ),
        }
    }
    reference.expect("execute_reuse_rounds needs at least one round")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Mode;
    use crate::mm::build_mm;
    use nd_linalg::Matrix;

    #[test]
    fn reuse_rounds_detects_counters_and_identity() {
        let pool = ThreadPool::new(2);
        let n = 16;
        let built = build_mm(n, 8, Mode::Nd, 1.0);
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        let mut c = Matrix::zeros(n, n);
        let mut am = a.clone();
        let mut bm = b.clone();
        let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
        let result = execute_reuse_rounds(
            &pool,
            &built,
            &ctx,
            &mut c,
            3,
            |c, _| c.as_mut_slice().fill(0.0),
            |c, _| c.clone(),
        );
        let mut expected = Matrix::zeros(n, n);
        nd_linalg::gemm::gemm_naive(&mut expected, &a, &b, 1.0, 0.0);
        assert!(result.max_abs_diff(&expected) < 1e-9);
    }
}
