//! 1-D Floyd–Warshall — the synthetic dynamic-programming benchmark of Section 3
//! (Figure 10) of the paper.
//!
//! The recurrence is `d(t, i) = d(t−1, i) ⊕ d(t−1, t−1)`: every cell of row `t`
//! depends on the cell directly above it and on the previous diagonal cell.  The
//! divide-and-conquer algorithm (Eq. 14) splits the `n × n` time/space table into
//! quadrants and distinguishes two task kinds: `A(X)` for blocks that contain their
//! own diagonal cells and `B(X, Y)` for off-diagonal blocks whose diagonal cells
//! live in another block `Y`.
//!
//! ## Fire-rule tables
//!
//! The quadrant layout used here is `X00` = early time / low index, `X01` = early
//! time / high index, `X10` = late time / low index, `X11` = late time / high index;
//! an `A` task expands to `(A(X00) AB⤳ B(X01)) ABAB⤳ (A(X11) AB⤳ B(X10))` (the
//! paper's Eq. 14, with the bottom half computing the diagonal block `X11` before
//! the off-diagonal `X10`), and a `B` task to
//! `(B(X00) ‖ B(X01)) BBBB⤳ (B(X10) ‖ B(X11))`.
//!
//! The `AB⤳` ("diagonal supply"), `BA⤳`, `BB⤳` and `BBBB⤳` tables below are
//! exactly the paper's.  Two additions are required for a race-free DAG (they do not
//! change the Θ(n) span):
//!
//! * `AV⤳` — the vertical dependency from `X00` to the block below it (`X10`),
//!   which Eq. (14)'s `ABAB⤳` rule set omits even though row `t` of `X10` reads row
//!   `t−1` of `X00`;
//! * `CORNER⤳` / `CORNER_AB⤳` — the dependency of a row on the *previous diagonal
//!   cell* when that cell is the bottom-right corner of the diagonal block one level
//!   up (every cell of the first row below an `A` block reads that block's corner).

use crate::common::{check_power_of_two_ratio, BlockOp, BuiltAlgorithm, Mode};
use crate::exec::{run, ExecContext};
use crate::frontend::{build_program, FireProgram, OpRecorder};
use nd_core::fire::{FireRuleSpec, FireTable};
use nd_core::program::{Composition, Expansion, NdProgram};
use nd_linalg::Matrix;
use nd_runtime::ThreadPool;

/// Which kind of block a task covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FwKind {
    /// The block contains the diagonal cells needed by its rows.
    A,
    /// The block's diagonal cells live in another block.
    B,
}

/// A task of the 1-D Floyd–Warshall program: a block of the time/space table
/// (1-based half-open ranges; rows are time steps, columns are cells).
#[derive(Clone, Copy, Debug)]
pub struct Fw1dTask {
    /// A (diagonal) or B (off-diagonal).
    pub kind: FwKind,
    /// First time step (inclusive).
    pub t0: usize,
    /// Last time step (exclusive).
    pub t1: usize,
    /// First cell (inclusive).
    pub i0: usize,
    /// Last cell (exclusive).
    pub i1: usize,
}

impl Fw1dTask {
    fn rows(&self) -> usize {
        self.t1 - self.t0
    }
    fn cols(&self) -> usize {
        self.i1 - self.i0
    }
}

/// Registers the 1-D Floyd–Warshall fire types.
pub fn register_fw1d_fire_types(fires: &mut FireTable) {
    // AB (paper): an A block supplies diagonal cells to a B block with the same rows.
    fires.define(
        "AB",
        vec![
            FireRuleSpec::fire(&[1, 1], "AB", &[1, 1]),
            FireRuleSpec::fire(&[1, 1], "AB", &[1, 2]),
            FireRuleSpec::fire(&[2, 1], "AB", &[2, 1]),
            FireRuleSpec::fire(&[2, 1], "AB", &[2, 2]),
        ],
    );
    // ABAB (paper + the two additions documented above): top half of an A feeds its
    // bottom half.
    fires.define(
        "ABAB",
        vec![
            FireRuleSpec::fire(&[2], "BA", &[1]),
            FireRuleSpec::fire(&[1], "AV", &[2]),
            FireRuleSpec::fire(&[1], "CORNER", &[1]),
        ],
    );
    // BA (paper): a B block feeds the A block below it (column-matched last row).
    fires.define(
        "BA",
        vec![
            FireRuleSpec::fire(&[2, 1], "BA", &[1, 1]),
            FireRuleSpec::fire(&[2, 2], "BB", &[1, 2]),
        ],
    );
    // AV (addition): an A block feeds the B block below it.
    fires.define(
        "AV",
        vec![
            FireRuleSpec::fire(&[2, 2], "BB", &[1, 1]),
            FireRuleSpec::fire(&[2, 1], "AV", &[1, 2]),
            FireRuleSpec::fire(&[2, 1], "CORNER_AB", &[1, 1]),
        ],
    );
    // BB (paper): a B block feeds the B block below it.
    fires.define(
        "BB",
        vec![
            FireRuleSpec::fire(&[2, 1], "BB", &[1, 1]),
            FireRuleSpec::fire(&[2, 2], "BB", &[1, 2]),
        ],
    );
    // BBBB (paper): internal arrow of a B task.
    fires.define(
        "BBBB",
        vec![
            FireRuleSpec::fire(&[1], "BB", &[1]),
            FireRuleSpec::fire(&[2], "BB", &[2]),
        ],
    );
    // CORNER (addition): the bottom-right corner cell of an A block is read by every
    // cell of the first row of the A block diagonally below-right of it.
    fires.define(
        "CORNER",
        vec![
            FireRuleSpec::fire(&[2, 1], "CORNER", &[1, 1]),
            FireRuleSpec::fire(&[2, 1], "CORNER_AB", &[1, 2]),
        ],
    );
    // CORNER_AB (addition): same, with a B-structured sink.
    fires.define(
        "CORNER_AB",
        vec![
            FireRuleSpec::fire(&[2, 1], "CORNER_AB", &[1, 1]),
            FireRuleSpec::fire(&[2, 1], "CORNER_AB", &[1, 2]),
        ],
    );
}

/// The 1-D Floyd–Warshall program over an `n × n` table.
pub struct Fw1dProgram {
    /// Base-case block dimension.
    pub base: usize,
    /// NP or ND.
    pub mode: Mode,
    fires: FireTable,
    ops: OpRecorder,
}

impl Fw1dProgram {
    /// Creates the program with the Floyd–Warshall fire types registered.
    pub fn new(base: usize, mode: Mode) -> Self {
        let mut fires = FireTable::new();
        register_fw1d_fire_types(&mut fires);
        fires.resolve();
        Fw1dProgram {
            base,
            mode,
            fires,
            ops: OpRecorder::new(),
        }
    }
}

impl FireProgram for Fw1dProgram {
    fn recorder(&self) -> &OpRecorder {
        &self.ops
    }
    fn mode(&self) -> Mode {
        self.mode
    }
}

impl NdProgram for Fw1dProgram {
    type Task = Fw1dTask;

    fn fire_table(&self) -> &FireTable {
        &self.fires
    }

    fn task_size(&self, t: &Fw1dTask) -> u64 {
        (t.rows() * t.cols()) as u64 + t.rows() as u64
    }

    fn expand(&self, t: &Fw1dTask) -> Expansion<Fw1dTask> {
        if t.rows() <= self.base {
            return self.ops.strand(
                (t.rows() * t.cols()) as u64,
                (t.rows() * t.cols()) as u64 + t.rows() as u64,
                BlockOp::Fw1dBlock {
                    table: 0,
                    t0: t.t0,
                    t1: t.t1,
                    i0: t.i0,
                    i1: t.i1,
                },
            );
        }
        let tm = t.t0 + t.rows() / 2;
        let im = t.i0 + t.cols() / 2;
        let block = |kind, t0, t1, i0, i1| {
            Composition::task(Fw1dTask {
                kind,
                t0,
                t1,
                i0,
                i1,
            })
        };
        match t.kind {
            FwKind::A => {
                let a00 = block(FwKind::A, t.t0, tm, t.i0, im);
                let b01 = block(FwKind::B, t.t0, tm, im, t.i1);
                let a11 = block(FwKind::A, tm, t.t1, im, t.i1);
                let b10 = block(FwKind::B, tm, t.t1, t.i0, im);
                match self.mode {
                    Mode::Np => Expansion::compose(Composition::seq2(
                        Composition::seq2(a00, b01),
                        Composition::seq2(a11, b10),
                    )),
                    Mode::Nd => Expansion::compose(Composition::fire(
                        Composition::fire(a00, self.fires.id("AB"), b01),
                        self.fires.id("ABAB"),
                        Composition::fire(a11, self.fires.id("AB"), b10),
                    )),
                }
            }
            FwKind::B => {
                let b00 = block(FwKind::B, t.t0, tm, t.i0, im);
                let b01 = block(FwKind::B, t.t0, tm, im, t.i1);
                let b10 = block(FwKind::B, tm, t.t1, t.i0, im);
                let b11 = block(FwKind::B, tm, t.t1, im, t.i1);
                match self.mode {
                    Mode::Np => Expansion::compose(Composition::seq2(
                        Composition::par2(b00, b01),
                        Composition::par2(b10, b11),
                    )),
                    Mode::Nd => Expansion::compose(Composition::fire(
                        Composition::par2(b00, b01),
                        self.fires.id("BBBB"),
                        Composition::par2(b10, b11),
                    )),
                }
            }
        }
    }

    fn task_label(&self, t: &Fw1dTask) -> Option<String> {
        Some(format!("{:?}({}x{})", t.kind, t.rows(), t.cols()))
    }
}

/// Builds the spawn tree, DAG and operation table for the 1-D Floyd–Warshall
/// problem of size `n` (table matrix id 0, sized `(n+1) × (n+1)`).
pub fn build_fw1d(n: usize, base: usize, mode: Mode) -> BuiltAlgorithm {
    check_power_of_two_ratio(n, base);
    let program = Fw1dProgram::new(base, mode);
    let root = Fw1dTask {
        kind: FwKind::A,
        t0: 1,
        t1: n + 1,
        i0: 1,
        i1: n + 1,
    };
    build_program(
        &program,
        root,
        format!("fw1d-{}-n{}-b{}", mode.name(), n, base),
    )
}

/// Runs the 1-D Floyd–Warshall in parallel from the given initial row
/// (`initial[1..=n]` are the `d(0, ·)` values) and returns the full table.
pub fn fw1d_parallel(pool: &ThreadPool, initial: &[f64], mode: Mode, base: usize) -> Matrix {
    let n = initial.len() - 1;
    let built = build_fw1d(n, base, mode);
    let mut table = Matrix::zeros(n + 1, n + 1);
    for i in 1..=n {
        table[(0, i)] = initial[i];
    }
    let ctx = ExecContext::from_matrices(&mut [&mut table]);
    run(pool, &built, &ctx).expect("algorithm strand panicked");
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::work_span::{fit_power_law, WorkSpan};
    use nd_linalg::fw::fw1d_naive;

    /// One compiled 1-D Floyd–Warshall graph recomputes the table (re-seeded
    /// in place between runs) three times bit-identically, counters restored.
    #[test]
    fn compiled_fw1d_reuse_is_bit_identical() {
        let pool = ThreadPool::new(4);
        let n = 64;
        let initial: Vec<f64> = (0..=n).map(|i| ((i * 7) % 13) as f64).collect();
        let built = build_fw1d(n, 16, Mode::Nd);
        let mut table = Matrix::zeros(n + 1, n + 1);
        let ctx = ExecContext::from_matrices(&mut [&mut table]);
        let reference = crate::driver::execute_reuse_rounds(
            &pool,
            &built,
            &ctx,
            &mut table,
            3,
            |table, _| {
                table.as_mut_slice().fill(0.0);
                for i in 1..=n {
                    table[(0, i)] = initial[i];
                }
            },
            |table, _| table.clone(),
        );
        let expected = fw1d_parallel(&ThreadPool::new(1), &initial, Mode::Nd, 16);
        assert_eq!(reference.max_abs_diff(&expected), 0.0);
    }

    #[test]
    fn np_and_nd_share_leaves_and_work() {
        let np = build_fw1d(64, 8, Mode::Np);
        let nd = build_fw1d(64, 8, Mode::Nd);
        assert_eq!(np.dag.strand_count(), nd.dag.strand_count());
        assert_eq!(np.dag.work(), nd.dag.work());
        assert!(np.dag.is_acyclic());
        assert!(nd.dag.is_acyclic());
    }

    #[test]
    fn nd_span_is_smaller_and_near_linear() {
        let sizes = [32usize, 64, 128, 256];
        let spans = |mode: Mode| -> Vec<(f64, f64)> {
            sizes
                .iter()
                .map(|&n| {
                    let ws = WorkSpan::of_dag(&build_fw1d(n, 8, mode).dag);
                    (n as f64, ws.span as f64)
                })
                .collect()
        };
        let np = spans(Mode::Np);
        let nd = spans(Mode::Nd);
        for (a, b) in np.iter().zip(nd.iter()) {
            assert!(b.1 <= a.1);
        }
        let (e_np, _) = fit_power_law(&np);
        let (e_nd, _) = fit_power_law(&nd);
        assert!(e_nd < e_np, "nd exponent {e_nd} vs np {e_np}");
        assert!(e_nd < 1.25, "nd 1-D FW span should be ~linear, got {e_nd}");
        assert!(
            e_np > 1.2,
            "np 1-D FW span should carry a log factor, got {e_np}"
        );
    }

    #[test]
    fn parallel_fw1d_matches_sequential() {
        let pool = ThreadPool::new(4);
        let n = 128;
        let initial: Vec<f64> = (0..=n).map(|i| ((i * 7) % 13) as f64).collect();
        let reference = fw1d_naive(&initial);
        for mode in [Mode::Np, Mode::Nd] {
            let table = fw1d_parallel(&pool, &initial, mode, 16);
            assert!(
                table.max_abs_diff(&reference) < 1e-12,
                "{mode:?} parallel 1-D FW diverged"
            );
        }
    }

    #[test]
    fn parallel_fw1d_tiny_base_case() {
        // Deep rule recursion, including the corner rules.
        let pool = ThreadPool::new(4);
        let n = 64;
        let initial: Vec<f64> = (0..=n).map(|i| ((i * 3) % 7) as f64).collect();
        let reference = fw1d_naive(&initial);
        let table = fw1d_parallel(&pool, &initial, Mode::Nd, 2);
        assert!(table.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn nd_exposes_more_ready_parallelism() {
        let np = build_fw1d(128, 8, Mode::Np);
        let nd = build_fw1d(128, 8, Mode::Nd);
        assert!(nd.dag.max_ready_width() >= np.dag.max_ready_width());
    }
}
