//! The executable fire-rule frontend: one entry point from an ND program
//! (spawn recipe + fire-rule table) to a runnable [`BuiltAlgorithm`].
//!
//! The paper's programming model is a *recipe*: tasks expand into `;`, `‖` and
//! `⤳` compositions, base cases are strands, and the DAG Rewriting System
//! turns the fire arrows into the algorithm DAG.  This module makes that
//! recipe directly executable — a [`FireProgram`] records a concrete
//! [`BlockOp`] per strand through its [`OpRecorder`], and [`build_program`]
//! performs the whole pipeline:
//!
//! 1. unfold the recipe into a kernel-bearing spawn tree
//!    ([`SpawnTree::unfold`]), which carries the size annotations `s(t)` the
//!    `σ·M_i` anchoring of `nd-exec` consumes,
//! 2. [validate](nd_core::fire::FireTable::validate) the fire-rule table
//!    against the tree's construct arity (malformed rule sets are rejected
//!    with a typed error instead of silently producing a wrong DAG),
//! 3. run the DRS ([`DagRewriter`]) to obtain the algorithm DAG, and
//! 4. package tree + DAG + operation table as a [`BuiltAlgorithm`], ready for
//!    [`driver::compile`](crate::driver::compile) /
//!    [`run_once`](crate::driver::run_once) /
//!    [`execute_reuse_rounds`](crate::driver::execute_reuse_rounds) on the
//!    flat pool and for `nd_exec::execute::run_anchored` on the hierarchical
//!    one.
//!
//! Every recursive algorithm in this crate (MM/MMS, TRS, Cholesky, LCS, 1-D
//! Floyd–Warshall) goes through this frontend; the access-set tracker of
//! [`crate::access`] remains available as an independent *cross-check oracle*
//! (see [`crate::access::access_oracle_dag`] and `tests/drs_frontend.rs`), not
//! as the DAG authority.
//!
//! # A complete fire-rule program, compiled and executed
//!
//! Two multiplies write the same block, ordered by the fire rule
//! `+○ STEP⤳ -○` (an empty relative pedigree on both sides: a full dependency
//! between the construct's two operands):
//!
//! ```
//! use nd_algorithms::common::{BlockOp, Mode, Rect};
//! use nd_algorithms::driver;
//! use nd_algorithms::exec::ExecContext;
//! use nd_algorithms::frontend::{build_program, FireProgram, OpRecorder};
//! use nd_core::fire::{FireRuleSpec, FireTable};
//! use nd_core::program::{Composition, Expansion, NdProgram};
//! use nd_linalg::Matrix;
//! use nd_runtime::ThreadPool;
//!
//! #[derive(Clone)]
//! enum Task { Root, Mul }
//!
//! struct Twice { fires: FireTable, ops: OpRecorder }
//!
//! impl NdProgram for Twice {
//!     type Task = Task;
//!     fn fire_table(&self) -> &FireTable { &self.fires }
//!     fn task_size(&self, _t: &Task) -> u64 { 3 * 16 }
//!     fn expand(&self, t: &Task) -> Expansion<Task> {
//!         match t {
//!             Task::Root => Expansion::compose(Composition::fire(
//!                 Composition::task(Task::Mul),
//!                 self.fires.id("STEP"),
//!                 Composition::task(Task::Mul),
//!             )),
//!             Task::Mul => self.ops.strand(
//!                 2 * 4 * 4 * 4,
//!                 3 * 16,
//!                 BlockOp::Gemm {
//!                     c: Rect::new(0, 0, 0, 4, 4),
//!                     a: Rect::new(1, 0, 0, 4, 4),
//!                     b: Rect::new(2, 0, 0, 4, 4),
//!                     alpha: 1.0,
//!                 },
//!             ),
//!         }
//!     }
//! }
//!
//! impl FireProgram for Twice {
//!     fn recorder(&self) -> &OpRecorder { &self.ops }
//!     fn mode(&self) -> Mode { Mode::Nd }
//! }
//!
//! let mut fires = FireTable::new();
//! fires.define("STEP", vec![FireRuleSpec::full(&[], &[])]);
//! fires.resolve();
//! let program = Twice { fires, ops: OpRecorder::new() };
//! let built = build_program(&program, Task::Root, "twice-4");
//! assert_eq!(built.dag.strand_count(), 2);
//! assert_eq!(built.dag.edge_count(), 1); // the STEP rule orders the two writers
//!
//! // Bind data and run it compiled — twice, reusing the same graph.
//! let a = Matrix::random(4, 4, 1);
//! let b = Matrix::random(4, 4, 2);
//! let mut c = Matrix::zeros(4, 4);
//! let (mut am, mut bm) = (a.clone(), b.clone());
//! let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
//! let pool = ThreadPool::new(2);
//! let compiled = driver::compile(&built, &ctx);
//! compiled.execute(&pool);
//! compiled.execute(&pool); // compiled graphs re-execute without rebuilding
//!
//! // Four accumulations of A·B in total: two strands × two executions.
//! let mut expected = Matrix::zeros(4, 4);
//! nd_linalg::gemm::gemm_naive(&mut expected, &a, &b, 4.0, 0.0);
//! assert!(c.max_abs_diff(&expected) < 1e-12);
//! ```

use crate::common::{BlockOp, BuiltAlgorithm, Mode};
use nd_core::drs::DagRewriter;
use nd_core::program::{Expansion, NdProgram};
use nd_core::spawn_tree::SpawnTree;
use std::cell::RefCell;

/// Records the concrete [`BlockOp`] of every strand a program expands, in
/// unfold order, handing each strand the operation-table index its DAG vertex
/// will dispatch through.
///
/// Programs embed one recorder and call [`OpRecorder::strand`] in their base
/// cases; [`build_program`] drains it into the [`BuiltAlgorithm`].
#[derive(Debug, Default)]
pub struct OpRecorder {
    ops: RefCell<Vec<BlockOp>>,
}

impl OpRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `op` and returns the base-case strand expansion carrying its
    /// operation-table index, with the given work and size annotations.
    pub fn strand<T>(&self, work: u64, size: u64, op: BlockOp) -> Expansion<T> {
        let mut ops = self.ops.borrow_mut();
        let idx = ops.len() as u64;
        ops.push(op);
        Expansion::strand_op(work, size, idx)
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.ops.borrow().len()
    }

    /// `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ops.borrow().is_empty()
    }

    /// Drains the recorded operations (one per strand, in creation order).
    pub fn take(&self) -> Vec<BlockOp> {
        self.ops.take()
    }
}

/// An [`NdProgram`] whose strands record executable block operations — the
/// input type of the fire-rule frontend.
pub trait FireProgram: NdProgram {
    /// The recorder the program's base cases write their [`BlockOp`]s to.
    fn recorder(&self) -> &OpRecorder;

    /// Which model the program's compositions are expressed in.
    fn mode(&self) -> Mode;

    /// The widest construct the program *family* can spawn (not the widest a
    /// particular instance happens to spawn — a shallow instance may bottom
    /// out before reaching its widest composition, and its rule table must
    /// still validate).  Defaults to binary; programs with wider compositions
    /// (e.g. Cholesky's ternary SYRK group) override this.
    fn max_construct_arity(&self) -> u8 {
        2
    }
}

/// Unfolds, validates and rewrites a fire-rule program into a runnable
/// [`BuiltAlgorithm`] — the frontend's single entry point.
///
/// The fire-rule table is validated against the construct arity of the
/// program family ([`FireProgram::max_construct_arity`], or wider if the
/// instance spawned wider), so a malformed table fails here with the
/// offending construct named, not later as a wrong DAG.
///
/// # Panics
/// Panics with the typed [`FireTableError`](nd_core::fire::FireTableError)
/// rendered if the program's fire-rule table is malformed, and if the DRS
/// output is cyclic (which a validated table should never produce).
pub fn build_program<P: FireProgram>(
    program: &P,
    root: P::Task,
    label: impl Into<String>,
) -> BuiltAlgorithm {
    let label = label.into();
    let tree = SpawnTree::unfold(program, root);
    // Pedigree indices are checked against the wider of the program family's
    // declared construct arity and what this instance actually spawned.
    let arity = tree
        .max_construct_arity()
        .max(program.max_construct_arity())
        .max(2);
    if let Err(e) = program.fire_table().validate(arity) {
        panic!("fire-rule frontend rejected `{label}`: {e}");
    }
    let dag = DagRewriter::new(&tree, program.fire_table()).build();
    assert!(
        dag.is_acyclic(),
        "fire-rule frontend produced a cyclic DAG for `{label}`"
    );
    BuiltAlgorithm {
        tree,
        dag,
        fires: program.fire_table().clone(),
        ops: program.recorder().take(),
        mode: program.mode(),
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Rect;
    use nd_core::fire::{FireRuleSpec, FireTable};
    use nd_core::program::Composition;

    #[derive(Clone)]
    struct Chain(u32);

    /// A serial chain of `Nop` strands glued by a fire type whose rule table
    /// the test can deliberately corrupt.
    struct ChainProgram {
        fires: FireTable,
        ops: OpRecorder,
    }

    impl ChainProgram {
        fn with_rules(rules: Vec<FireRuleSpec>) -> Self {
            let mut fires = FireTable::new();
            fires.define("LINK", rules);
            fires.resolve();
            ChainProgram {
                fires,
                ops: OpRecorder::new(),
            }
        }
    }

    impl NdProgram for ChainProgram {
        type Task = Chain;
        fn fire_table(&self) -> &FireTable {
            &self.fires
        }
        fn task_size(&self, t: &Chain) -> u64 {
            1 + t.0 as u64
        }
        fn expand(&self, t: &Chain) -> Expansion<Chain> {
            if t.0 == 0 {
                return self.ops.strand(1, 1, BlockOp::Nop);
            }
            Expansion::compose(Composition::fire(
                Composition::task(Chain(t.0 - 1)),
                self.fires.id("LINK"),
                Composition::task(Chain(t.0 - 1)),
            ))
        }
    }

    impl FireProgram for ChainProgram {
        fn recorder(&self) -> &OpRecorder {
            &self.ops
        }
        fn mode(&self) -> Mode {
            Mode::Nd
        }
    }

    #[test]
    fn frontend_builds_a_complete_algorithm() {
        let p = ChainProgram::with_rules(vec![
            FireRuleSpec::fire(&[1], "LINK", &[1]),
            FireRuleSpec::fire(&[2], "LINK", &[2]),
        ]);
        let built = build_program(&p, Chain(3), "chain-3");
        assert_eq!(built.label, "chain-3");
        assert_eq!(built.mode, Mode::Nd);
        assert_eq!(built.dag.strand_count(), 8);
        assert_eq!(built.ops.len(), 8);
        assert!(built.dag.is_acyclic());
        // Every strand carries a valid op tag, and sizes reach the DAG.
        assert_eq!(built.tree.strand_count(), 8);
        assert!(built.tree.max_construct_arity() >= 2);
    }

    #[test]
    #[should_panic(expected = "child index 7")]
    fn frontend_rejects_out_of_arity_rules() {
        let p = ChainProgram::with_rules(vec![FireRuleSpec::fire(&[7], "LINK", &[1])]);
        let _ = build_program(&p, Chain(2), "bad-arity");
    }

    #[test]
    #[should_panic(expected = "repeats rule")]
    fn frontend_rejects_duplicate_rules() {
        let p = ChainProgram::with_rules(vec![
            FireRuleSpec::full(&[1], &[1]),
            FireRuleSpec::full(&[1], &[1]),
        ]);
        let _ = build_program(&p, Chain(2), "dup-rule");
    }

    #[test]
    fn recorder_hands_out_sequential_tags() {
        let rec = OpRecorder::new();
        assert!(rec.is_empty());
        for k in 0..4u64 {
            let e: Expansion<Chain> = rec.strand(
                1,
                1,
                BlockOp::Gemm {
                    c: Rect::new(0, 0, 0, 1, 1),
                    a: Rect::new(1, 0, 0, 1, 1),
                    b: Rect::new(2, 0, 0, 1, 1),
                    alpha: k as f64,
                },
            );
            match e.kind {
                nd_core::program::ExpansionKind::Strand { op, .. } => assert_eq!(op, Some(k)),
                _ => panic!("recorder must produce strands"),
            }
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.take().len(), 4);
        assert!(rec.is_empty());
    }
}
