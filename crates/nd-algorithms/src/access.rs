//! Building algorithm DAGs (plus companion spawn trees) from read/write
//! access sets.
//!
//! The loop-blocked algorithms (LU with partial pivoting, 2-D Floyd–Warshall) are
//! most naturally described as a sequence of block operations with known read and
//! write sets.  [`AccessDagBuilder`] turns such a sequence into an
//! [`AlgorithmDag`]: it serialises conflicting accesses (read-after-write,
//! write-after-write and write-after-read) and nothing else — i.e. it produces the
//! *algorithm DAG* of the computation, which is exactly what the ND model exposes to
//! the scheduler.  The NP variants of the same algorithms are produced by the same
//! builder with explicit phase barriers added.
//!
//! Alongside the DAG the builder grows a companion [`SpawnTree`] whose leaves
//! are the DAG's strands: [`open_task`](AccessDagBuilder::open_task) /
//! [`close_task`](AccessDagBuilder::close_task) nest size-annotated task
//! groups (elimination steps, phases, block rows), giving the loop-blocked
//! algorithms the same `(tree, dag)` pair the recursive algorithms get from
//! [`SpawnTree::unfold`] — which is what the `σ·M_i`-maximal decomposition of
//! `nd-sched`, and therefore the anchored executor of `nd-exec`, operate on.
//!
//! For the recursive algorithms the DAG authority is the fire-rule frontend
//! ([`crate::frontend`]); here the tracker serves as their independent
//! **cross-check oracle**: [`access_oracle_dag`] replays a DRS-built program's
//! recorded block operations through [`op_accesses`], and the workspace test
//! `tests/drs_frontend.rs` asserts both constructions induce the same
//! precedence relation over strands.

use crate::common::{BlockOp, BuiltAlgorithm, Rect};
use nd_core::dag::{AlgorithmDag, DagVertex, DagVertexId};
use nd_core::spawn_tree::{NodeId, NodeKind, SpawnTree};
use std::collections::HashMap;

/// Builds an [`AlgorithmDag`] (and its companion spawn tree) from tasks annotated
/// with the abstract cells they read and write.
pub struct AccessDagBuilder {
    dag: AlgorithmDag,
    tree: SpawnTree,
    group_stack: Vec<NodeId>,
    last_writer: HashMap<u64, DagVertexId>,
    readers_since_write: HashMap<u64, Vec<DagVertexId>>,
    /// Vertices every subsequent task must depend on (used for phase barriers).
    barrier_frontier: Vec<DagVertexId>,
    edges_seen: std::collections::HashSet<(u32, u32)>,
}

impl Default for AccessDagBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessDagBuilder {
    /// An empty builder whose spawn-tree root carries a trivial size
    /// annotation.  Callers that feed the tree to the anchoring machinery
    /// should use [`AccessDagBuilder::with_root`] and annotate the real
    /// footprint instead.
    pub fn new() -> Self {
        Self::with_root(1, "")
    }

    /// An empty builder whose spawn-tree root task is annotated with the
    /// program's total footprint `size` (in words).
    pub fn with_root(size: u64, label: impl Into<String>) -> Self {
        let mut tree = SpawnTree::new();
        let root = tree.add_node(NodeKind::Seq, None, Some(size), label);
        AccessDagBuilder {
            dag: AlgorithmDag::new(),
            tree,
            group_stack: vec![root],
            last_writer: HashMap::new(),
            readers_since_write: HashMap::new(),
            barrier_frontier: Vec::new(),
            edges_seen: std::collections::HashSet::new(),
        }
    }

    fn add_edge(&mut self, from: DagVertexId, to: DagVertexId) {
        if from != to && self.edges_seen.insert((from.0, to.0)) {
            self.dag.add_edge(from, to);
        }
    }

    /// Opens a nested task group with footprint `size`: tasks added until the
    /// matching [`close_task`](AccessDagBuilder::close_task) become leaves of
    /// this spawn-tree node.  Groups give the `σ·M_i`-maximal decomposition
    /// something between whole-program and single-strand granularity to
    /// anchor.
    pub fn open_task(&mut self, size: u64, label: impl Into<String>) -> NodeId {
        let parent = *self.group_stack.last().expect("root always present");
        let id = self
            .tree
            .add_node(NodeKind::Par, Some(parent), Some(size), label);
        self.group_stack.push(id);
        id
    }

    /// Closes the innermost open task group.
    ///
    /// # Panics
    /// Panics if no group is open.
    pub fn close_task(&mut self) {
        assert!(
            self.group_stack.len() > 1,
            "close_task without a matching open_task"
        );
        self.group_stack.pop();
    }

    /// Adds a task with the given work, size, operation tag and access sets, in
    /// program order.  Returns its vertex.
    pub fn add_task(
        &mut self,
        work: u64,
        size: u64,
        op: Option<u64>,
        label: impl Into<String>,
        reads: &[u64],
        writes: &[u64],
    ) -> DagVertexId {
        let label: String = label.into();
        let parent = *self.group_stack.last().expect("root always present");
        let leaf = self.tree.add_node(
            NodeKind::Strand { work, op },
            Some(parent),
            Some(size),
            label.clone(),
        );
        let v = self.dag.add_strand(leaf, work, size, op, label);
        for f in self.barrier_frontier.clone() {
            self.add_edge(f, v);
        }
        for &cell in reads {
            if let Some(&w) = self.last_writer.get(&cell) {
                self.add_edge(w, v);
            }
            self.readers_since_write.entry(cell).or_default().push(v);
        }
        for &cell in writes {
            if let Some(&w) = self.last_writer.get(&cell) {
                self.add_edge(w, v);
            }
            if let Some(readers) = self.readers_since_write.remove(&cell) {
                for r in readers {
                    self.add_edge(r, v);
                }
            }
            self.last_writer.insert(cell, v);
        }
        v
    }

    /// Inserts a phase barrier: every task added after this point depends on every
    /// task added before it.  This is how the NP (parallel-loop + serial-phase)
    /// variants of the blocked algorithms are expressed.
    pub fn barrier(&mut self) {
        // Gather all vertices so far as the new frontier, represented by a single
        // zero-work barrier vertex to keep the edge count linear.
        let all: Vec<DagVertexId> = self.dag.vertex_ids().collect();
        if all.is_empty() {
            return;
        }
        let bar = self.dag.add_barrier();
        for v in all {
            if v != bar {
                self.add_edge(v, bar);
            }
        }
        self.barrier_frontier = vec![bar];
        // After a barrier, earlier writers/readers are superseded by the barrier.
        self.last_writer.clear();
        self.readers_since_write.clear();
    }

    /// Finishes the build and returns the DAG.
    pub fn finish(self) -> AlgorithmDag {
        self.dag
    }

    /// Finishes the build and returns the spawn tree together with the DAG
    /// (the pair the anchoring machinery of `nd-sched` / `nd-exec` consumes).
    pub fn finish_parts(self) -> (SpawnTree, AlgorithmDag) {
        (self.tree, self.dag)
    }
}

// ---------------------------------------------------------------------------
// The access-set cross-check oracle for DRS-built programs.
//
// The fire-rule frontend (`crate::frontend`) is the DAG authority for the
// recursive algorithms; the functions below recover the *data-dependency
// ground truth* of the same program independently, by replaying its recorded
// block operations in program order through the access tracker.  The
// `tests/drs_frontend.rs` workspace suite asserts both constructions induce
// the same precedence relation over strands.
// ---------------------------------------------------------------------------

/// Pseudo-matrix index used for the cells of the runtime pivot store (LU).
const PIVOT_MAT: usize = (1 << 20) - 1;

/// Encodes one abstract memory cell `(matrix, row, column)` as a `u64`.
#[inline]
fn cell(mat: usize, r: usize, c: usize) -> u64 {
    debug_assert!(r < (1 << 22) && c < (1 << 22) && mat < (1 << 20));
    ((mat as u64) << 44) | ((r as u64) << 22) | c as u64
}

/// Appends every cell of a rectangular block.
fn rect_cells(out: &mut Vec<u64>, r: &Rect) {
    for i in 0..r.rows {
        for j in 0..r.cols {
            out.push(cell(r.mat, r.r + i, r.c + j));
        }
    }
}

/// The abstract read and write sets of one block operation, at cell
/// granularity — exactly the cells the corresponding `nd-linalg` kernel
/// touches (DP-table operations read only their boundary, not the whole
/// table, so the oracle is as sharp as the fire rules it cross-checks).
pub fn op_accesses(op: &BlockOp) -> (Vec<u64>, Vec<u64>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    match op {
        BlockOp::Gemm { c, a, b, .. } | BlockOp::GemmNt { c, a, b, .. } => {
            rect_cells(&mut reads, a);
            rect_cells(&mut reads, b);
            rect_cells(&mut reads, c); // accumulation reads the output block
            rect_cells(&mut writes, c);
        }
        BlockOp::TrsmLower { t, b } => {
            rect_cells(&mut reads, t);
            rect_cells(&mut reads, b);
            rect_cells(&mut writes, b);
        }
        BlockOp::TrsmRightLt { l, b } | BlockOp::TrsmUnitLower { l, b } => {
            rect_cells(&mut reads, l);
            rect_cells(&mut reads, b);
            rect_cells(&mut writes, b);
        }
        BlockOp::Potrf { a } => {
            rect_cells(&mut reads, a);
            rect_cells(&mut writes, a);
        }
        BlockOp::LuPanel { a, piv } => {
            rect_cells(&mut reads, a);
            rect_cells(&mut writes, a);
            for k in 0..a.cols {
                writes.push(cell(PIVOT_MAT, 0, piv + k));
            }
        }
        BlockOp::LuRowSwap { a, piv, len } => {
            rect_cells(&mut reads, a);
            for k in 0..*len {
                reads.push(cell(PIVOT_MAT, 0, piv + k));
            }
            rect_cells(&mut writes, a);
        }
        BlockOp::LcsBlock {
            table,
            i0,
            i1,
            j0,
            j1,
        } => {
            // Reads: the top boundary row (including the corner) and the left
            // boundary column of the block.
            for j in (j0 - 1)..*j1 {
                reads.push(cell(*table, i0 - 1, j));
            }
            for i in *i0..*i1 {
                reads.push(cell(*table, i, j0 - 1));
            }
            for i in *i0..*i1 {
                for j in *j0..*j1 {
                    writes.push(cell(*table, i, j));
                }
            }
        }
        BlockOp::Fw1dBlock {
            table,
            t0,
            t1,
            i0,
            i1,
        } => {
            // Reads: the row above the block, plus the previous diagonal cell
            // of every time step (`d(t−1, t−1)`).
            for i in *i0..*i1 {
                reads.push(cell(*table, t0 - 1, i));
            }
            for t in *t0..*t1 {
                reads.push(cell(*table, t - 1, t - 1));
            }
            for t in *t0..*t1 {
                for i in *i0..*i1 {
                    writes.push(cell(*table, t, i));
                }
            }
        }
        BlockOp::FwUpdate { x, u, v } => {
            rect_cells(&mut reads, u);
            rect_cells(&mut reads, v);
            rect_cells(&mut reads, x);
            rect_cells(&mut writes, x);
        }
        BlockOp::Nop => {}
    }
    (reads, writes)
}

/// Rebuilds the dependency structure of a DRS-built algorithm from its block
/// operations' access sets alone — the cross-check oracle for the fire-rule
/// frontend.
///
/// The built algorithm's strand vertices appear in spawn-tree pre-order,
/// which is the program's sequential-elision order, so replaying them in
/// vertex order through the tracker serialises exactly the conflicting
/// accesses.  The returned DAG's strands carry the same `op` tags as
/// `built.dag`, which is how `tests/drs_frontend.rs` matches leaves when
/// comparing the two precedence relations.
pub fn access_oracle_dag(built: &BuiltAlgorithm) -> AlgorithmDag {
    let mut b = AccessDagBuilder::new();
    for v in built.dag.vertex_ids() {
        if let DagVertex::Strand {
            work,
            size,
            op: Some(op),
            label,
            ..
        } = built.dag.vertex(v)
        {
            let (reads, writes) = op_accesses(&built.ops[*op as usize]);
            b.add_task(*work, *size, Some(*op), label.clone(), &reads, &writes);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_dependency() {
        let mut b = AccessDagBuilder::new();
        let w = b.add_task(1, 1, None, "w", &[], &[10]);
        let r = b.add_task(1, 1, None, "r", &[10], &[]);
        let dag = b.finish();
        assert!(dag.depends_transitively(w, r));
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn waw_and_war_dependencies() {
        let mut b = AccessDagBuilder::new();
        let w1 = b.add_task(1, 1, None, "w1", &[], &[5]);
        let r1 = b.add_task(1, 1, None, "r1", &[5], &[]);
        let w2 = b.add_task(1, 1, None, "w2", &[], &[5]);
        let dag = b.finish();
        assert!(dag.depends_transitively(w1, w2)); // WAW
        assert!(dag.depends_transitively(r1, w2)); // WAR
        assert!(dag.depends_transitively(w1, r1)); // RAW
    }

    #[test]
    fn independent_cells_stay_parallel() {
        let mut b = AccessDagBuilder::new();
        let a = b.add_task(1, 1, None, "a", &[], &[1]);
        let c = b.add_task(1, 1, None, "c", &[], &[2]);
        let dag = b.finish();
        assert!(!dag.depends_transitively(a, c));
        assert!(!dag.depends_transitively(c, a));
        assert_eq!(dag.span(), 1);
    }

    #[test]
    fn barrier_serialises_phases() {
        let mut b = AccessDagBuilder::new();
        let a = b.add_task(1, 1, None, "a", &[], &[1]);
        let c = b.add_task(1, 1, None, "c", &[], &[2]);
        b.barrier();
        let d = b.add_task(1, 1, None, "d", &[], &[3]);
        let dag = b.finish();
        assert!(dag.depends_transitively(a, d));
        assert!(dag.depends_transitively(c, d));
        assert_eq!(dag.span(), 2);
        assert!(dag.is_acyclic());
    }

    #[test]
    fn chains_of_writes_are_fully_ordered() {
        let mut b = AccessDagBuilder::new();
        let ids: Vec<_> = (0..10)
            .map(|i| b.add_task(2, 1, None, format!("t{i}"), &[], &[7]))
            .collect();
        let dag = b.finish();
        assert_eq!(dag.span(), 20);
        for w in ids.windows(2) {
            assert!(dag.depends_transitively(w[0], w[1]));
        }
    }

    #[test]
    fn companion_tree_mirrors_groups_and_strands() {
        let mut b = AccessDagBuilder::with_root(100, "prog");
        let step = b.open_task(40, "step0");
        let v0 = b.add_task(3, 8, Some(0), "t0", &[], &[1]);
        b.close_task();
        let v1 = b.add_task(5, 8, Some(1), "t1", &[1], &[]);
        let (tree, dag) = b.finish_parts();
        assert_eq!(tree.strand_count(), 2);
        assert_eq!(dag.strand_count(), 2);
        // Strand vertices point at real tree leaves with matching sizes.
        for (v, size) in [(v0, 8u64), (v1, 8)] {
            let leaf = dag.vertex(v).tree_node().expect("strand has a tree node");
            assert!(tree.node(leaf).is_strand());
            assert_eq!(tree.effective_size(leaf), size);
        }
        // The group node nests under the annotated root.
        assert_eq!(tree.effective_size(step), 40);
        assert_eq!(tree.effective_size(tree.root()), 100);
        assert!(tree.is_ancestor(tree.root(), step));
        let leaf0 = dag.vertex(v0).tree_node().unwrap();
        assert!(tree.is_ancestor(step, leaf0));
        let leaf1 = dag.vertex(v1).tree_node().unwrap();
        assert!(!tree.is_ancestor(step, leaf1));
    }

    #[test]
    #[should_panic(expected = "close_task without a matching open_task")]
    fn unbalanced_close_panics() {
        let mut b = AccessDagBuilder::new();
        b.close_task();
    }

    #[test]
    fn gemm_accesses_cover_all_three_blocks() {
        let op = BlockOp::Gemm {
            c: Rect::new(0, 0, 0, 2, 2),
            a: Rect::new(1, 2, 0, 2, 3),
            b: Rect::new(2, 0, 4, 3, 2),
            alpha: 1.0,
        };
        let (reads, writes) = op_accesses(&op);
        assert_eq!(reads.len(), 2 * 3 + 3 * 2 + 2 * 2);
        assert_eq!(writes.len(), 4);
        // Writes are exactly the C block, disjoint from the A/B read cells.
        for w in &writes {
            assert_eq!(w >> 44, 0, "writes stay in matrix 0");
        }
    }

    #[test]
    fn lcs_accesses_read_only_the_boundary() {
        let op = BlockOp::LcsBlock {
            table: 0,
            i0: 3,
            i1: 5,
            j0: 3,
            j1: 5,
        };
        let (reads, writes) = op_accesses(&op);
        // Top boundary row: columns 2..5 (3 cells); left column: rows 3..5
        // (2 cells).  Writes: the 2×2 block.
        assert_eq!(reads.len(), 3 + 2);
        assert_eq!(writes.len(), 4);
        assert!(reads.iter().all(|r| !writes.contains(r)));
    }

    #[test]
    fn fw1d_accesses_include_the_previous_diagonal() {
        let op = BlockOp::Fw1dBlock {
            table: 0,
            t0: 5,
            t1: 7,
            i0: 1,
            i1: 3,
        };
        let (reads, _) = op_accesses(&op);
        // d(t−1, t−1) for t ∈ {5, 6}: cells (4,4) and (5,5).
        assert!(reads.contains(&cell(0, 4, 4)));
        assert!(reads.contains(&cell(0, 5, 5)));
    }
}
