//! Building algorithm DAGs (plus companion spawn trees) from read/write
//! access sets.
//!
//! The loop-blocked algorithms (LU with partial pivoting, 2-D Floyd–Warshall) are
//! most naturally described as a sequence of block operations with known read and
//! write sets.  [`AccessDagBuilder`] turns such a sequence into an
//! [`AlgorithmDag`]: it serialises conflicting accesses (read-after-write,
//! write-after-write and write-after-read) and nothing else — i.e. it produces the
//! *algorithm DAG* of the computation, which is exactly what the ND model exposes to
//! the scheduler.  The NP variants of the same algorithms are produced by the same
//! builder with explicit phase barriers added.
//!
//! Alongside the DAG the builder grows a companion [`SpawnTree`] whose leaves
//! are the DAG's strands: [`open_task`](AccessDagBuilder::open_task) /
//! [`close_task`](AccessDagBuilder::close_task) nest size-annotated task
//! groups (elimination steps, phases, block rows), giving the loop-blocked
//! algorithms the same `(tree, dag)` pair the recursive algorithms get from
//! [`SpawnTree::unfold`] — which is what the `σ·M_i`-maximal decomposition of
//! `nd-sched`, and therefore the anchored executor of `nd-exec`, operate on.

use nd_core::dag::{AlgorithmDag, DagVertexId};
use nd_core::spawn_tree::{NodeId, NodeKind, SpawnTree};
use std::collections::HashMap;

/// Builds an [`AlgorithmDag`] (and its companion spawn tree) from tasks annotated
/// with the abstract cells they read and write.
pub struct AccessDagBuilder {
    dag: AlgorithmDag,
    tree: SpawnTree,
    group_stack: Vec<NodeId>,
    last_writer: HashMap<u64, DagVertexId>,
    readers_since_write: HashMap<u64, Vec<DagVertexId>>,
    /// Vertices every subsequent task must depend on (used for phase barriers).
    barrier_frontier: Vec<DagVertexId>,
    edges_seen: std::collections::HashSet<(u32, u32)>,
}

impl Default for AccessDagBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessDagBuilder {
    /// An empty builder whose spawn-tree root carries a trivial size
    /// annotation.  Callers that feed the tree to the anchoring machinery
    /// should use [`AccessDagBuilder::with_root`] and annotate the real
    /// footprint instead.
    pub fn new() -> Self {
        Self::with_root(1, "")
    }

    /// An empty builder whose spawn-tree root task is annotated with the
    /// program's total footprint `size` (in words).
    pub fn with_root(size: u64, label: impl Into<String>) -> Self {
        let mut tree = SpawnTree::new();
        let root = tree.add_node(NodeKind::Seq, None, Some(size), label);
        AccessDagBuilder {
            dag: AlgorithmDag::new(),
            tree,
            group_stack: vec![root],
            last_writer: HashMap::new(),
            readers_since_write: HashMap::new(),
            barrier_frontier: Vec::new(),
            edges_seen: std::collections::HashSet::new(),
        }
    }

    fn add_edge(&mut self, from: DagVertexId, to: DagVertexId) {
        if from != to && self.edges_seen.insert((from.0, to.0)) {
            self.dag.add_edge(from, to);
        }
    }

    /// Opens a nested task group with footprint `size`: tasks added until the
    /// matching [`close_task`](AccessDagBuilder::close_task) become leaves of
    /// this spawn-tree node.  Groups give the `σ·M_i`-maximal decomposition
    /// something between whole-program and single-strand granularity to
    /// anchor.
    pub fn open_task(&mut self, size: u64, label: impl Into<String>) -> NodeId {
        let parent = *self.group_stack.last().expect("root always present");
        let id = self
            .tree
            .add_node(NodeKind::Par, Some(parent), Some(size), label);
        self.group_stack.push(id);
        id
    }

    /// Closes the innermost open task group.
    ///
    /// # Panics
    /// Panics if no group is open.
    pub fn close_task(&mut self) {
        assert!(
            self.group_stack.len() > 1,
            "close_task without a matching open_task"
        );
        self.group_stack.pop();
    }

    /// Adds a task with the given work, size, operation tag and access sets, in
    /// program order.  Returns its vertex.
    pub fn add_task(
        &mut self,
        work: u64,
        size: u64,
        op: Option<u64>,
        label: impl Into<String>,
        reads: &[u64],
        writes: &[u64],
    ) -> DagVertexId {
        let label: String = label.into();
        let parent = *self.group_stack.last().expect("root always present");
        let leaf = self.tree.add_node(
            NodeKind::Strand { work, op },
            Some(parent),
            Some(size),
            label.clone(),
        );
        let v = self.dag.add_strand(leaf, work, size, op, label);
        for f in self.barrier_frontier.clone() {
            self.add_edge(f, v);
        }
        for &cell in reads {
            if let Some(&w) = self.last_writer.get(&cell) {
                self.add_edge(w, v);
            }
            self.readers_since_write.entry(cell).or_default().push(v);
        }
        for &cell in writes {
            if let Some(&w) = self.last_writer.get(&cell) {
                self.add_edge(w, v);
            }
            if let Some(readers) = self.readers_since_write.remove(&cell) {
                for r in readers {
                    self.add_edge(r, v);
                }
            }
            self.last_writer.insert(cell, v);
        }
        v
    }

    /// Inserts a phase barrier: every task added after this point depends on every
    /// task added before it.  This is how the NP (parallel-loop + serial-phase)
    /// variants of the blocked algorithms are expressed.
    pub fn barrier(&mut self) {
        // Gather all vertices so far as the new frontier, represented by a single
        // zero-work barrier vertex to keep the edge count linear.
        let all: Vec<DagVertexId> = self.dag.vertex_ids().collect();
        if all.is_empty() {
            return;
        }
        let bar = self.dag.add_barrier();
        for v in all {
            if v != bar {
                self.add_edge(v, bar);
            }
        }
        self.barrier_frontier = vec![bar];
        // After a barrier, earlier writers/readers are superseded by the barrier.
        self.last_writer.clear();
        self.readers_since_write.clear();
    }

    /// Finishes the build and returns the DAG.
    pub fn finish(self) -> AlgorithmDag {
        self.dag
    }

    /// Finishes the build and returns the spawn tree together with the DAG
    /// (the pair the anchoring machinery of `nd-sched` / `nd-exec` consumes).
    pub fn finish_parts(self) -> (SpawnTree, AlgorithmDag) {
        (self.tree, self.dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_dependency() {
        let mut b = AccessDagBuilder::new();
        let w = b.add_task(1, 1, None, "w", &[], &[10]);
        let r = b.add_task(1, 1, None, "r", &[10], &[]);
        let dag = b.finish();
        assert!(dag.depends_transitively(w, r));
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn waw_and_war_dependencies() {
        let mut b = AccessDagBuilder::new();
        let w1 = b.add_task(1, 1, None, "w1", &[], &[5]);
        let r1 = b.add_task(1, 1, None, "r1", &[5], &[]);
        let w2 = b.add_task(1, 1, None, "w2", &[], &[5]);
        let dag = b.finish();
        assert!(dag.depends_transitively(w1, w2)); // WAW
        assert!(dag.depends_transitively(r1, w2)); // WAR
        assert!(dag.depends_transitively(w1, r1)); // RAW
    }

    #[test]
    fn independent_cells_stay_parallel() {
        let mut b = AccessDagBuilder::new();
        let a = b.add_task(1, 1, None, "a", &[], &[1]);
        let c = b.add_task(1, 1, None, "c", &[], &[2]);
        let dag = b.finish();
        assert!(!dag.depends_transitively(a, c));
        assert!(!dag.depends_transitively(c, a));
        assert_eq!(dag.span(), 1);
    }

    #[test]
    fn barrier_serialises_phases() {
        let mut b = AccessDagBuilder::new();
        let a = b.add_task(1, 1, None, "a", &[], &[1]);
        let c = b.add_task(1, 1, None, "c", &[], &[2]);
        b.barrier();
        let d = b.add_task(1, 1, None, "d", &[], &[3]);
        let dag = b.finish();
        assert!(dag.depends_transitively(a, d));
        assert!(dag.depends_transitively(c, d));
        assert_eq!(dag.span(), 2);
        assert!(dag.is_acyclic());
    }

    #[test]
    fn chains_of_writes_are_fully_ordered() {
        let mut b = AccessDagBuilder::new();
        let ids: Vec<_> = (0..10)
            .map(|i| b.add_task(2, 1, None, format!("t{i}"), &[], &[7]))
            .collect();
        let dag = b.finish();
        assert_eq!(dag.span(), 20);
        for w in ids.windows(2) {
            assert!(dag.depends_transitively(w[0], w[1]));
        }
    }

    #[test]
    fn companion_tree_mirrors_groups_and_strands() {
        let mut b = AccessDagBuilder::with_root(100, "prog");
        let step = b.open_task(40, "step0");
        let v0 = b.add_task(3, 8, Some(0), "t0", &[], &[1]);
        b.close_task();
        let v1 = b.add_task(5, 8, Some(1), "t1", &[1], &[]);
        let (tree, dag) = b.finish_parts();
        assert_eq!(tree.strand_count(), 2);
        assert_eq!(dag.strand_count(), 2);
        // Strand vertices point at real tree leaves with matching sizes.
        for (v, size) in [(v0, 8u64), (v1, 8)] {
            let leaf = dag.vertex(v).tree_node().expect("strand has a tree node");
            assert!(tree.node(leaf).is_strand());
            assert_eq!(tree.effective_size(leaf), size);
        }
        // The group node nests under the annotated root.
        assert_eq!(tree.effective_size(step), 40);
        assert_eq!(tree.effective_size(tree.root()), 100);
        assert!(tree.is_ancestor(tree.root(), step));
        let leaf0 = dag.vertex(v0).tree_node().unwrap();
        assert!(tree.is_ancestor(step, leaf0));
        let leaf1 = dag.vertex(v1).tree_node().unwrap();
        assert!(!tree.is_ancestor(step, leaf1));
    }

    #[test]
    #[should_panic(expected = "close_task without a matching open_task")]
    fn unbalanced_close_panics() {
        let mut b = AccessDagBuilder::new();
        b.close_task();
    }
}
