//! Building algorithm DAGs from read/write access sets.
//!
//! The loop-blocked algorithms (LU with partial pivoting, 2-D Floyd–Warshall) are
//! most naturally described as a sequence of block operations with known read and
//! write sets.  [`AccessDagBuilder`] turns such a sequence into an
//! [`AlgorithmDag`]: it serialises conflicting accesses (read-after-write,
//! write-after-write and write-after-read) and nothing else — i.e. it produces the
//! *algorithm DAG* of the computation, which is exactly what the ND model exposes to
//! the scheduler.  The NP variants of the same algorithms are produced by the same
//! builder with explicit phase barriers added.

use nd_core::dag::{AlgorithmDag, DagVertexId};
use nd_core::spawn_tree::NodeId;
use std::collections::HashMap;

/// Builds an [`AlgorithmDag`] from tasks annotated with the abstract cells they read
/// and write.
#[derive(Default)]
pub struct AccessDagBuilder {
    dag: AlgorithmDag,
    last_writer: HashMap<u64, DagVertexId>,
    readers_since_write: HashMap<u64, Vec<DagVertexId>>,
    /// Vertices every subsequent task must depend on (used for phase barriers).
    barrier_frontier: Vec<DagVertexId>,
    edges_seen: std::collections::HashSet<(u32, u32)>,
}

impl AccessDagBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_edge(&mut self, from: DagVertexId, to: DagVertexId) {
        if from != to && self.edges_seen.insert((from.0, to.0)) {
            self.dag.add_edge(from, to);
        }
    }

    /// Adds a task with the given work, size, operation tag and access sets, in
    /// program order.  Returns its vertex.
    pub fn add_task(
        &mut self,
        work: u64,
        size: u64,
        op: Option<u64>,
        label: impl Into<String>,
        reads: &[u64],
        writes: &[u64],
    ) -> DagVertexId {
        let v = self.dag.add_strand(
            NodeId(self.dag.vertex_count() as u32),
            work,
            size,
            op,
            label.into(),
        );
        for f in self.barrier_frontier.clone() {
            self.add_edge(f, v);
        }
        for &cell in reads {
            if let Some(&w) = self.last_writer.get(&cell) {
                self.add_edge(w, v);
            }
            self.readers_since_write.entry(cell).or_default().push(v);
        }
        for &cell in writes {
            if let Some(&w) = self.last_writer.get(&cell) {
                self.add_edge(w, v);
            }
            if let Some(readers) = self.readers_since_write.remove(&cell) {
                for r in readers {
                    self.add_edge(r, v);
                }
            }
            self.last_writer.insert(cell, v);
        }
        v
    }

    /// Inserts a phase barrier: every task added after this point depends on every
    /// task added before it.  This is how the NP (parallel-loop + serial-phase)
    /// variants of the blocked algorithms are expressed.
    pub fn barrier(&mut self) {
        // Gather all vertices so far as the new frontier, represented by a single
        // zero-work barrier vertex to keep the edge count linear.
        let all: Vec<DagVertexId> = self.dag.vertex_ids().collect();
        if all.is_empty() {
            return;
        }
        let bar = self.dag.add_barrier();
        for v in all {
            if v != bar {
                self.add_edge(v, bar);
            }
        }
        self.barrier_frontier = vec![bar];
        // After a barrier, earlier writers/readers are superseded by the barrier.
        self.last_writer.clear();
        self.readers_since_write.clear();
    }

    /// Finishes the build and returns the DAG.
    pub fn finish(self) -> AlgorithmDag {
        self.dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_dependency() {
        let mut b = AccessDagBuilder::new();
        let w = b.add_task(1, 1, None, "w", &[], &[10]);
        let r = b.add_task(1, 1, None, "r", &[10], &[]);
        let dag = b.finish();
        assert!(dag.depends_transitively(w, r));
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn waw_and_war_dependencies() {
        let mut b = AccessDagBuilder::new();
        let w1 = b.add_task(1, 1, None, "w1", &[], &[5]);
        let r1 = b.add_task(1, 1, None, "r1", &[5], &[]);
        let w2 = b.add_task(1, 1, None, "w2", &[], &[5]);
        let dag = b.finish();
        assert!(dag.depends_transitively(w1, w2)); // WAW
        assert!(dag.depends_transitively(r1, w2)); // WAR
        assert!(dag.depends_transitively(w1, r1)); // RAW
    }

    #[test]
    fn independent_cells_stay_parallel() {
        let mut b = AccessDagBuilder::new();
        let a = b.add_task(1, 1, None, "a", &[], &[1]);
        let c = b.add_task(1, 1, None, "c", &[], &[2]);
        let dag = b.finish();
        assert!(!dag.depends_transitively(a, c));
        assert!(!dag.depends_transitively(c, a));
        assert_eq!(dag.span(), 1);
    }

    #[test]
    fn barrier_serialises_phases() {
        let mut b = AccessDagBuilder::new();
        let a = b.add_task(1, 1, None, "a", &[], &[1]);
        let c = b.add_task(1, 1, None, "c", &[], &[2]);
        b.barrier();
        let d = b.add_task(1, 1, None, "d", &[], &[3]);
        let dag = b.finish();
        assert!(dag.depends_transitively(a, d));
        assert!(dag.depends_transitively(c, d));
        assert_eq!(dag.span(), 2);
        assert!(dag.is_acyclic());
    }

    #[test]
    fn chains_of_writes_are_fully_ordered() {
        let mut b = AccessDagBuilder::new();
        let ids: Vec<_> = (0..10)
            .map(|i| b.add_task(2, 1, None, format!("t{i}"), &[], &[7]))
            .collect();
        let dag = b.finish();
        assert_eq!(dag.span(), 20);
        for w in ids.windows(2) {
            assert!(dag.depends_transitively(w[0], w[1]));
        }
    }
}
