//! The acceptance sweep: every DAG shape up to 6 tasks × 1–3 workers,
//! explored exhaustively with and without an injected fault, as a two-run
//! (execute → reset → re-execute) state space.  Zero violations expected.
//!
//! The CI `verify-model` job runs the even wider sweep (a panic injected at
//! *every* strand of every shape) through the release-built `verify_model`
//! binary; this test keeps the per-shape fault set to one representative
//! panic plus the nondeterministic deadline so the whole matrix stays
//! test-suite-sized.

use nd_model::{check, enumerate_dags, CheckStats, Config, Fault};

#[test]
fn all_dag_shapes_up_to_six_tasks_hold_the_invariants() {
    let mut grand = CheckStats::default();
    let mut shapes = 0usize;
    for n in 1..=6usize {
        for dag in enumerate_dags(n) {
            shapes += 1;
            for workers in 1..=3usize {
                // With and without an injected fault: clean, a panic at a
                // mid-graph strand, and a deadline that may trip at any claim.
                for fault in [
                    Fault::None,
                    Fault::PanicAt((n / 2) as u8),
                    Fault::DeadlineAnytime,
                ] {
                    match check(Config::new(dag, workers, fault)) {
                        Ok(stats) => grand.absorb(stats),
                        Err(cex) => panic!(
                            "violation in {n}-task DAG {:?} × {workers} workers × {fault:?}:\n{cex}",
                            dag.edges()
                        ),
                    }
                }
            }
        }
    }
    // 1 + 2 + 6 + 31 + 302 + 5984 isomorphism classes.
    assert_eq!(shapes, 6326, "DAG enumeration changed size");
    assert!(
        grand.states > 1_000_000,
        "suspiciously small sweep: {grand:?}"
    );
    println!(
        "sweep: {shapes} shapes × 3 worker counts × 3 faults — {} states, {} transitions",
        grand.states, grand.transitions
    );
}
