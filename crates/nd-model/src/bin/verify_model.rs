//! CI entry point: the full small-N model-checking sweep.
//!
//! Explores every DAG shape (one representative per isomorphism class) up to
//! `--max-tasks` tasks, for 1..=3 workers, under a clean run, a panic
//! injected at every strand, and a nondeterministically-tripping deadline —
//! each as a two-run (execute → reset → re-execute) exploration.  Prints
//! explored-state counts per configuration tier and exits nonzero with the
//! counterexample on any safety or liveness violation.
//!
//! Usage: `verify_model [--max-tasks N] [--samples K]` (defaults: 6, 200).
//! `--samples` additionally replays K model-sampled schedules through the
//! real executor (the conformance loop).

use nd_model::{
    check, enumerate_dags, replay_through_executor, sample_schedule, CheckStats, Config, Fault,
    Mutation,
};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut max_tasks = 6usize;
    let mut samples = 200usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-tasks" => {
                max_tasks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-tasks takes a number 1..=6")
            }
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples takes a number")
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: verify_model [--max-tasks N] [--samples K]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let mut grand = CheckStats::default();
    let mut configs = 0u64;
    for n in 1..=max_tasks {
        let dags = enumerate_dags(n);
        let tier_start = Instant::now();
        let mut tier = CheckStats::default();
        for dag in &dags {
            for workers in 1..=3usize {
                let mut faults = vec![Fault::None, Fault::DeadlineAnytime];
                faults.extend((0..n).map(|t| Fault::PanicAt(t as u8)));
                for fault in faults {
                    configs += 1;
                    match check(Config::new(*dag, workers, fault)) {
                        Ok(stats) => tier.absorb(stats),
                        Err(cex) => {
                            eprintln!(
                                "VIOLATION in {n}-task DAG {:?} × {workers} workers × {fault:?}:",
                                dag.edges()
                            );
                            eprintln!("{cex}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
        }
        println!(
            "n={n}: {:>5} DAG shapes, {:>12} states, {:>13} transitions, {:>9} terminals  ({:.1?})",
            dags.len(),
            tier.states,
            tier.transitions,
            tier.terminals,
            tier_start.elapsed()
        );
        grand.absorb(tier);
    }
    println!(
        "sweep clean: {configs} configurations, {} states, {} transitions in {:.1?}",
        grand.states,
        grand.transitions,
        started.elapsed()
    );

    // Conformance: model-sampled schedules through the real executor.  The
    // panic-fault replays unwind through the driver's catch scope by design;
    // silence the default hook so the log stays readable, and restore it
    // afterwards.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let conf_start = Instant::now();
    let dags4 = enumerate_dags(4.min(max_tasks));
    let mut replayed = 0usize;
    let mut seed = 0x5EED_u64;
    'outer: while replayed < samples {
        for dag in &dags4 {
            for workers in 1..=3usize {
                for fault in [
                    Fault::None,
                    Fault::PanicAt((seed % dag.task_count() as u64) as u8),
                    Fault::DeadlineAnytime,
                ] {
                    if replayed >= samples {
                        break 'outer;
                    }
                    seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut config = Config::new(*dag, workers, fault);
                    config.runs = 1;
                    let schedule = sample_schedule(&config, seed);
                    if let Err(divergence) = replay_through_executor(&schedule) {
                        eprintln!(
                            "CONFORMANCE FAILURE ({:?} × {workers} workers × {fault:?}): {divergence}",
                            dag.edges()
                        );
                        return ExitCode::FAILURE;
                    }
                    replayed += 1;
                }
            }
        }
    }
    std::panic::set_hook(default_hook);
    println!(
        "conformance clean: {replayed} model-sampled schedules replayed through the real executor ({:.1?})",
        conf_start.elapsed()
    );

    // The checker must still catch regressions: one smoke mutation.
    let fork = nd_model::Dag::from_edges(3, &[(0, 1), (0, 2)]);
    let mut broken = Config::new(fork, 1, Fault::None);
    broken.mutation = Mutation::SpawnReadyTwice;
    if check(broken).is_ok() {
        eprintln!("SELF-CHECK FAILURE: the checker accepted a deliberately-broken protocol");
        return ExitCode::FAILURE;
    }
    println!("self-check clean: deliberate regression produced a counterexample");
    ExitCode::SUCCESS
}
