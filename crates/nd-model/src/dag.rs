//! Small-N DAG shapes: representation, exhaustive enumeration, and
//! isomorphism-deduplication.
//!
//! The protocol model is symmetric under task relabelling — the invariants it
//! checks (exactly-once claiming, counter restoration, latch release) do not
//! mention task identities — so it suffices to explore one representative per
//! isomorphism class.  Every DAG admits a topological labelling, hence every
//! class has a representative whose edges all point from a lower index to a
//! higher one; enumeration therefore walks the `2^C(n,2)` forward-edge masks
//! and keeps the first member of each class (canonical form = the minimum
//! adjacency bitmask over all `n!` vertex permutations).

use crate::state::MAX_TASKS;

/// A directed acyclic graph on `n ≤ MAX_TASKS` tasks, stored as an adjacency
/// bitmask: bit `i * MAX_TASKS + j` is set iff there is an edge `i → j`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Dag {
    n: u8,
    adj: u64,
}

impl Dag {
    /// Builds a DAG from an explicit edge list.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-edges, or `n > MAX_TASKS`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        assert!(n <= MAX_TASKS, "at most {MAX_TASKS} tasks");
        let mut adj = 0u64;
        for &(i, j) in edges {
            assert!(
                (i as usize) < n && (j as usize) < n,
                "edge endpoint out of range"
            );
            assert_ne!(i, j, "self-edge");
            adj |= 1 << (i as usize * MAX_TASKS + j as usize);
        }
        let dag = Dag { n: n as u8, adj };
        assert!(dag.is_acyclic(), "edge list has a cycle");
        dag
    }

    /// Number of tasks.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.n as usize
    }

    /// `true` iff the edge `i → j` exists.
    #[inline]
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adj & (1 << (i * MAX_TASKS + j)) != 0
    }

    /// The successors of task `i`, ascending.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n as usize).filter(move |&j| self.has_edge(i, j))
    }

    /// The number of successors of task `i`.
    pub fn successor_count(&self, i: usize) -> usize {
        ((self.adj >> (i * MAX_TASKS)) & ((1 << MAX_TASKS) - 1)).count_ones() as usize
    }

    /// The `k`-th successor (ascending) of task `i`.
    pub fn successor(&self, i: usize, k: usize) -> usize {
        self.successors(i).nth(k).expect("successor index in range")
    }

    /// Initial predecessor count of each task — the dependency counters a
    /// [`CompiledGraph`](nd_runtime::CompiledGraph) would store.
    pub fn initial_preds(&self) -> [u8; MAX_TASKS] {
        let mut preds = [0u8; MAX_TASKS];
        for i in 0..self.n as usize {
            for j in self.successors(i) {
                preds[j] += 1;
            }
        }
        preds
    }

    /// Tasks with no predecessors, ascending.
    pub fn roots(&self) -> Vec<u8> {
        let preds = self.initial_preds();
        (0..self.n).filter(|&t| preds[t as usize] == 0).collect()
    }

    /// The edge list in `(from, to)` form, suitable for
    /// [`CompiledGraph::from_edges`](nd_runtime::CompiledGraph::from_edges).
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for i in 0..self.n as usize {
            for j in self.successors(i) {
                edges.push((i as u32, j as u32));
            }
        }
        edges
    }

    fn is_acyclic(&self) -> bool {
        // Kahn's algorithm on ≤ MAX_TASKS nodes.
        let mut preds = self.initial_preds();
        let mut removed = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.n as usize {
                if preds[i] == 0 {
                    preds[i] = u8::MAX; // mark removed
                    removed += 1;
                    changed = true;
                    for j in self.successors(i) {
                        if preds[j] != u8::MAX {
                            preds[j] -= 1;
                        }
                    }
                }
            }
        }
        removed == self.n as usize
    }

    /// The minimum adjacency bitmask over all vertex permutations — equal for
    /// two DAGs iff they are isomorphic as digraphs.
    fn canonical_form(&self, perms: &[Vec<u8>]) -> u64 {
        let mut best = u64::MAX;
        for perm in perms {
            let mut image = 0u64;
            let mut rest = self.adj;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let (i, j) = (bit / MAX_TASKS, bit % MAX_TASKS);
                image |= 1 << (perm[i] as usize * MAX_TASKS + perm[j] as usize);
            }
            best = best.min(image);
        }
        best
    }
}

fn permutations(n: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut items: Vec<u8> = (0..n as u8).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Enumerates one representative per isomorphism class of DAGs on exactly `n`
/// tasks.  The counts for `n = 1..=6` are `1, 2, 6, 31, 302, 5984` (OEIS
/// A003087: acyclic digraphs on n unlabelled nodes).
pub fn enumerate_dags(n: usize) -> Vec<Dag> {
    assert!((1..=MAX_TASKS).contains(&n));
    // All DAGs admit a topological labelling, so forward-edge masks (edges
    // only from lower to higher index) cover every class.
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    let perms = permutations(n);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for mask in 0u32..(1 << pairs.len()) {
        let mut adj = 0u64;
        for (b, &(i, j)) in pairs.iter().enumerate() {
            if mask & (1 << b) != 0 {
                adj |= 1 << (i * MAX_TASKS + j);
            }
        }
        let dag = Dag { n: n as u8, adj };
        if seen.insert(dag.canonical_form(&perms)) {
            out.push(dag);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlabelled_dag_counts_match_oeis_a003087() {
        let counts: Vec<usize> = (1..=6).map(|n| enumerate_dags(n).len()).collect();
        assert_eq!(counts, vec![1, 2, 6, 31, 302, 5984]);
    }

    #[test]
    fn diamond_metadata() {
        let d = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(d.initial_preds()[..4], [0, 1, 1, 2]);
        assert_eq!(d.roots(), vec![0]);
        assert_eq!(d.successor_count(0), 2);
        assert_eq!(d.successor(0, 1), 2);
        assert_eq!(d.edges(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_edge_list_is_rejected() {
        Dag::from_edges(2, &[(0, 1), (1, 0)]);
    }
}
