//! The explorer: memoized depth-first search over the model's state graph,
//! with counterexample path extraction.
//!
//! The state graph is finite and — apart from stutter steps, which the model
//! does not generate — acyclic: every action strictly advances a well-founded
//! measure (tasks move from queues into workers, program counters advance,
//! counters and the latch only decrease between resets, and the run index
//! only increases).  DFS with a visited set therefore terminates, visits
//! every reachable state exactly once, and every maximal path ends in a
//! terminal state that [`Model::check_terminal`] vets — which is how the
//! liveness properties ("every ready strand is eventually claimed", "the
//! drain terminates") reduce to a safety check on terminal states.

use crate::model::{Action, Config, Model, Violation};
use crate::state::{FastBuildHasher, State};
use std::collections::HashSet;
use std::fmt;

/// Exploration statistics, reported by the CI sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Distinct states visited (after symmetry canonicalization, if on).
    pub states: u64,
    /// Transitions taken (including transitions into already-visited states).
    pub transitions: u64,
    /// Terminal (quiescent) states vetted.
    pub terminals: u64,
}

impl CheckStats {
    pub fn absorb(&mut self, other: CheckStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.terminals += other.terminals;
    }
}

/// A concrete interleaving ending in an invariant violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub violation: Violation,
    /// The actions from the initial state to the violating step (for a
    /// terminal-state violation, to the stuck state).
    pub path: Vec<Action>,
    pub stats: CheckStats,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.violation)?;
        writeln!(f, "counterexample ({} steps):", self.path.len())?;
        for (i, action) in self.path.iter().enumerate() {
            writeln!(f, "  {:>3}. {action}", i + 1)?;
        }
        write!(
            f,
            "({} states, {} transitions explored before the violation)",
            self.stats.states, self.stats.transitions
        )
    }
}

struct Dfs {
    model: Model,
    visited: HashSet<State, FastBuildHasher>,
    path: Vec<Action>,
    stats: CheckStats,
}

impl Dfs {
    fn explore(&mut self, s: &State) -> Result<(), Counterexample> {
        let key = if self.model.config.symmetry {
            s.worker_canonical(self.model.config.workers)
        } else {
            s.clone()
        };
        if !self.visited.insert(key) {
            return Ok(());
        }
        self.stats.states += 1;
        let succs = self.model.successors(s);
        if succs.is_empty() {
            self.stats.terminals += 1;
            return self
                .model
                .check_terminal(s)
                .map_err(|v| self.counterexample(v));
        }
        for (action, next) in succs {
            self.stats.transitions += 1;
            self.path.push(action);
            match next {
                Err(violation) => return Err(self.counterexample(violation)),
                Ok(next) => self.explore(&next)?,
            }
            self.path.pop();
        }
        Ok(())
    }

    fn counterexample(&self, violation: Violation) -> Counterexample {
        Counterexample {
            violation,
            path: self.path.clone(),
            stats: self.stats,
        }
    }
}

/// Exhaustively explores `config`'s state space.  Returns exploration
/// statistics, or the first counterexample found.
pub fn check(config: Config) -> Result<CheckStats, Box<Counterexample>> {
    let model = Model::new(config);
    let initial = model.initial_state();
    let mut dfs = Dfs {
        model,
        visited: HashSet::with_hasher(FastBuildHasher::default()),
        path: Vec::new(),
        stats: CheckStats::default(),
    };
    dfs.explore(&initial).map_err(Box::new)?;
    Ok(dfs.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::model::{Fault, Mutation};

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn clean_diamond_has_no_violations() {
        for workers in 1..=3 {
            let stats = check(Config::new(diamond(), workers, Fault::None)).unwrap();
            assert!(stats.states > 0);
            assert!(stats.terminals > 0);
        }
    }

    #[test]
    fn faulted_diamond_has_no_violations() {
        for workers in 1..=3 {
            for fault in [Fault::PanicAt(0), Fault::PanicAt(3), Fault::DeadlineAnytime] {
                check(Config::new(diamond(), workers, fault)).unwrap();
            }
        }
    }

    #[test]
    fn symmetry_reduction_preserves_the_verdict_and_shrinks_the_space() {
        let full = {
            let mut c = Config::new(diamond(), 3, Fault::None);
            c.symmetry = false;
            check(c).unwrap()
        };
        let reduced = check(Config::new(diamond(), 3, Fault::None)).unwrap();
        assert!(
            reduced.states < full.states,
            "expected symmetry to prune: {} !< {}",
            reduced.states,
            full.states
        );
    }

    #[test]
    fn skip_counter_restore_is_caught_with_a_counterexample() {
        let mut c = Config::new(diamond(), 1, Fault::None);
        c.mutation = Mutation::SkipCounterRestore;
        let cex = check(c).unwrap_err();
        assert!(
            matches!(
                cex.violation,
                Violation::CounterNotRestored { .. } | Violation::ClaimUnready { .. }
            ),
            "unexpected violation: {}",
            cex.violation
        );
        let rendered = cex.to_string();
        assert!(rendered.contains("counterexample"), "{rendered}");
        assert!(rendered.contains("claim"), "{rendered}");
    }

    #[test]
    fn skip_drain_count_down_hangs_the_cancelled_run() {
        let mut c = Config::new(diamond(), 2, Fault::PanicAt(0));
        c.mutation = Mutation::SkipDrainCountDown;
        let cex = check(c).unwrap_err();
        assert!(
            matches!(
                cex.violation,
                Violation::Stuck { .. } | Violation::LatchNotReleased { .. }
            ),
            "unexpected violation: {}",
            cex.violation
        );
    }

    #[test]
    fn drop_second_ready_deadlocks() {
        // A fork: 0 → {1, 2}.  Claiming 0 readies both successors; dropping
        // the second loses a strand forever.
        let fork = Dag::from_edges(3, &[(0, 1), (0, 2)]);
        let mut c = Config::new(fork, 1, Fault::None);
        c.mutation = Mutation::DropSecondReady;
        let cex = check(c).unwrap_err();
        assert!(
            matches!(cex.violation, Violation::Stuck { .. }),
            "unexpected violation: {}",
            cex.violation
        );
    }

    #[test]
    fn spawn_ready_twice_double_claims() {
        let fork = Dag::from_edges(3, &[(0, 1), (0, 2)]);
        let mut c = Config::new(fork, 1, Fault::None);
        c.mutation = Mutation::SpawnReadyTwice;
        let cex = check(c).unwrap_err();
        assert!(
            matches!(
                cex.violation,
                Violation::DoubleClaim { .. } | Violation::LatchUnderflow
            ),
            "unexpected violation: {}",
            cex.violation
        );
    }

    #[test]
    fn shared_result_slot_tears_with_two_workers() {
        // Two independent tasks, two workers: both can be mid-work at once.
        let parallel = Dag::from_edges(2, &[]);
        let mut c = Config::new(parallel, 2, Fault::None);
        c.mutation = Mutation::SharedResultSlot;
        let cex = check(c).unwrap_err();
        assert!(
            matches!(cex.violation, Violation::TornWrite { .. }),
            "unexpected violation: {}",
            cex.violation
        );
        // …but is indistinguishable from correct with a single worker, which
        // is exactly why the sweep runs the full worker matrix.
        let mut c1 = Config::new(parallel, 1, Fault::None);
        c1.mutation = Mutation::SharedResultSlot;
        check(c1).unwrap();
    }
}
