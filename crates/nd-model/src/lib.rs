//! nd-model: exhaustive state-space model checking of the executor protocol.
//!
//! Everything `nd-runtime` ships rests on one concurrent protocol:
//! exactly-once task claiming via atomic dependency-counter decrement with
//! self-resetting counters, a counting latch for run completion, and a
//! first-fault-wins drain for cancellation.  This crate verifies that
//! protocol the way a stateright-style checker would — but in plain Rust
//! with no registry dependencies, consistent with the workspace's offline
//! shim policy:
//!
//! * [`dag`] enumerates every DAG shape up to 6 tasks (one representative
//!   per isomorphism class — 1, 2, 6, 31, 302, 5984 for n = 1..=6);
//! * [`state`] is the finite global state: counters, queues, latch, fault
//!   cell, and a per-worker program counter at the granularity of the real
//!   implementation's atomics;
//! * [`model`] is the transition system — take/steal, claim, work, successor
//!   decrement, latch countdown, reset — with the safety checks (no double
//!   claim, no claim of an unready task, no counter underflow, no torn
//!   result-slot write, counters bit-restored and latch released exactly
//!   once at quiescence) attached to the transitions that could commit them,
//!   plus deliberately-broken [`model::Mutation`]s proving the checker
//!   actually catches regressions;
//! * [`checker`] explores by memoized DFS (optionally pruned by worker
//!   symmetry) and extracts a counterexample path on any violation; liveness
//!   ("every ready strand is eventually claimed", "the drain terminates")
//!   reduces to vetting terminal states because the transition graph is
//!   acyclic;
//! * [`conformance`] closes the loop with the implementation: schedules
//!   sampled from the model replay through the real
//!   [`CompiledGraph`](nd_runtime::CompiledGraph) via
//!   [`ScheduleDriver`](nd_runtime::ScheduleDriver), checking that the claim
//!   order is accepted bit-identically and the fault partitions agree.
//!
//! The CI entry point is the `verify_model` binary, which runs the full
//! small-N sweep (every DAG shape × 1–3 workers × clean/panic/deadline) and
//! fails loudly, with the counterexample, on any violation.  A TLA+ mirror
//! of the core claim/drain transition system lives in
//! `verification/scheduler.tla`.

pub mod checker;
pub mod conformance;
pub mod dag;
pub mod model;
pub mod state;

pub use checker::{check, CheckStats, Counterexample};
pub use conformance::{replay_through_executor, sample_schedule, Schedule};
pub use dag::{enumerate_dags, Dag};
pub use model::{Action, Config, Fault, Model, Mutation, Violation};
