//! The model's global state: a finite snapshot of everything the executor
//! protocol shares between workers, compact enough to memoize millions of
//! times.
//!
//! Each field mirrors one shared object in `nd-runtime` (see NOTATION.md for
//! the full mapping):
//!
//! | model field      | real object                                          |
//! |------------------|------------------------------------------------------|
//! | `pending`        | `CompiledGraph::pending` (live atomic counters)      |
//! | `claimed`        | the exactly-once property itself (ghost state)       |
//! | `executed`       | which tasks' work ran (ghost state)                  |
//! | `drained`        | claims that skipped work in a cancelled run (ghost)  |
//! | `latch`          | `ActiveRun::latch` (`CountLatch`)                    |
//! | `cancelled`      | `FaultCell::cancelled`                               |
//! | `injector`       | the pool's global injector (roots are submitted there)|
//! | `deques[w]`      | worker `w`'s Chase–Lev deque                         |
//! | `workers[w]`     | worker `w`'s program counter inside `run_graph_task` |

use std::hash::{BuildHasherDefault, Hasher};

/// The model checks DAGs up to this many tasks (the ISSUE's small-N bound).
pub const MAX_TASKS: usize = 6;
/// The model checks pools of 1–3 workers.
pub const MAX_WORKERS: usize = 3;
/// Sentinel for "no task" in packed fields.
pub const NO_TASK: u8 = u8::MAX;

/// A bounded task queue.  Owners push and pop at the back (LIFO, the
/// depth-first local order); thieves and injector consumers take from the
/// front (FIFO) — exactly the Chase–Lev discipline of `nd-runtime::pool`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Deque {
    items: [u8; MAX_TASKS],
    len: u8,
}

impl Deque {
    pub fn push_back(&mut self, t: u8) {
        assert!((self.len as usize) < MAX_TASKS, "deque overflow");
        self.items[self.len as usize] = t;
        self.len += 1;
    }

    pub fn pop_back(&mut self) -> Option<u8> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let t = self.items[self.len as usize];
        self.items[self.len as usize] = 0; // keep unused slots canonical for Eq/Hash
        Some(t)
    }

    pub fn take_front(&mut self) -> Option<u8> {
        if self.len == 0 {
            return None;
        }
        let t = self.items[0];
        self.items.copy_within(1..self.len as usize, 0);
        self.len -= 1;
        self.items[self.len as usize] = 0;
        Some(t)
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// The contents, front to back.
    pub fn as_slice(&self) -> &[u8] {
        &self.items[..self.len as usize]
    }

    /// The back element (the owner's next pop), if any.
    pub fn last(&self) -> Option<&u8> {
        self.as_slice().last()
    }

    /// The front element (the next steal / injector take), if any.
    pub fn first(&self) -> Option<&u8> {
        self.as_slice().first()
    }
}

/// A worker's program counter inside `run_graph_task` — one variant per
/// distinct shared-memory program point, so every interleaving of the real
/// atomics is a distinct path through the model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkerPc {
    /// In `find_work`: no task in hand.
    Idle,
    /// Holds `task` freshly taken from a queue; the next step is the claim
    /// (counter restore + cancellation/deadline gate).
    Claiming { task: u8 },
    /// Past the fault gate: the task's work is running.  Two workers
    /// simultaneously `Working` on the same result slot is the torn-write
    /// hazard the `PivotStore` invariant forbids.
    Working { task: u8 },
    /// In `finish_successors`: `next_succ` counts decrements already done;
    /// `first_ready` ([`NO_TASK`] if none yet) is the successor reserved for
    /// inline tail-execution.  Once every successor is decremented
    /// (`next_succ == successor count`) the worker sits *between* the last
    /// `fetch_sub` and `latch.count_down()` — the countdown is its own atomic
    /// step, taken by the `CountDown` action.
    Finishing {
        task: u8,
        next_succ: u8,
        first_ready: u8,
    },
}

/// One global protocol state.  `Eq + Hash` so the checker can memoize it.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct State {
    /// Live dependency counters, one per task.
    pub pending: [u8; MAX_TASKS],
    /// Bitmask: tasks whose claim has begun (ghost — the double-claim check).
    pub claimed: u8,
    /// Bitmask: tasks whose work ran to completion.
    pub executed: u8,
    /// Bitmask: tasks claimed in a cancelled run (full protocol, no work).
    pub drained: u8,
    /// The run's `CountLatch` value.
    pub latch: u8,
    /// How many times the latch has hit zero this run (must end at exactly 1).
    pub latch_zeroed: u8,
    /// `FaultCell::cancelled`.
    pub cancelled: bool,
    /// Whether the configured injected fault has fired yet.
    pub fault_fired: bool,
    /// Which execution of the reusable graph this is (`Reset` increments it).
    pub run: u8,
    /// The pool's global injector; roots are submitted here in ascending
    /// order before workers start.
    pub injector: Deque,
    /// Per-worker deques (indices past the configured worker count unused).
    pub deques: [Deque; MAX_WORKERS],
    /// Per-worker program counters.
    pub workers: [WorkerPc; MAX_WORKERS],
}

impl State {
    /// Canonicalizes under worker symmetry: in a flat-topology pool the
    /// workers are interchangeable (every action is available to every
    /// worker, steals target any victim), so states differing only by a
    /// permutation of the `(pc, deque)` pairs are behaviourally identical.
    /// Sorting the pairs picks one representative per orbit, cutting the
    /// visited set by up to `workers!`.
    pub fn worker_canonical(&self, workers: usize) -> State {
        let mut s = self.clone();
        // Insertion sort of ≤ 3 (pc, deque) pairs by their encoded ordering.
        for i in 1..workers {
            let mut j = i;
            while j > 0 && Self::worker_key(&s, j) < Self::worker_key(&s, j - 1) {
                s.workers.swap(j, j - 1);
                s.deques.swap(j, j - 1);
                j -= 1;
            }
        }
        s
    }

    fn worker_key(s: &State, w: usize) -> (WorkerPc, Deque) {
        (s.workers[w], s.deques[w])
    }
}

// WorkerPc ordering for the canonical sort: derive-by-hand to avoid exposing
// an Ord with semantic meaning.
impl PartialOrd for WorkerPc {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorkerPc {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(pc: &WorkerPc) -> (u8, u8, u8, u8) {
            match *pc {
                WorkerPc::Idle => (0, 0, 0, 0),
                WorkerPc::Claiming { task } => (1, task, 0, 0),
                WorkerPc::Working { task } => (2, task, 0, 0),
                WorkerPc::Finishing {
                    task,
                    next_succ,
                    first_ready,
                } => (3, task, next_succ, first_ready),
            }
        }
        rank(self).cmp(&rank(other))
    }
}

impl PartialOrd for Deque {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Deque {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.len, self.items).cmp(&(other.len, other.items))
    }
}

/// A fast, non-cryptographic hasher for the memoization set (the default
/// SipHash costs a measurable fraction of exploration time on millions of
/// small states).  Multiply-rotate mixing in the FxHash family.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut v = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            self.mix(v);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FastHasher`]-keyed sets.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deque_is_lifo_for_owner_fifo_for_thief() {
        let mut d = Deque::default();
        d.push_back(1);
        d.push_back(2);
        d.push_back(3);
        assert_eq!(d.pop_back(), Some(3));
        assert_eq!(d.take_front(), Some(1));
        assert_eq!(d.pop_back(), Some(2));
        assert_eq!(d.pop_back(), None);
        assert_eq!(d.take_front(), None);
    }

    #[test]
    fn popped_deques_compare_equal_to_fresh_ones() {
        // Stale item slots must not leak into Eq/Hash.
        let mut d = Deque::default();
        d.push_back(5);
        d.pop_back();
        assert_eq!(d, Deque::default());
    }

    #[test]
    fn worker_canonicalization_sorts_pairs() {
        let mut s = State {
            pending: [0; MAX_TASKS],
            claimed: 0,
            executed: 0,
            drained: 0,
            latch: 0,
            latch_zeroed: 0,
            cancelled: false,
            fault_fired: false,
            run: 0,
            injector: Deque::default(),
            deques: [Deque::default(); MAX_WORKERS],
            workers: [
                WorkerPc::Working { task: 2 },
                WorkerPc::Idle,
                WorkerPc::Claiming { task: 1 },
            ],
        };
        s.deques[0].push_back(4);
        let canon = s.worker_canonical(3);
        assert_eq!(
            canon.workers,
            [
                WorkerPc::Idle,
                WorkerPc::Claiming { task: 1 },
                WorkerPc::Working { task: 2 }
            ]
        );
        // Deque 0 travelled with its worker (now at index 2).
        assert_eq!(canon.deques[2].len(), 1);
        // Permuted states share one canonical form.
        let mut t = s.clone();
        t.workers.swap(0, 1);
        t.deques.swap(0, 1);
        assert_eq!(t.worker_canonical(3), canon);
    }
}
