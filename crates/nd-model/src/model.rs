//! The transition system: which actions are enabled in a state, what each
//! does to the shared objects, and which invariant each can violate.
//!
//! Every action is one shared-memory step of the real protocol
//! (`nd-runtime::dataflow::run_graph_task` plus the pool's take/steal paths),
//! at the granularity of its atomics: taking a task from a queue, the claim
//! (counter restore + fault gate), the work, each successor `fetch_sub`, the
//! latch countdown, and the reusable graph's reset.  Safety violations are
//! reported *on the transition that commits them*, so a counterexample path
//! ends exactly at the faulty step.

use crate::dag::Dag;
use crate::state::{Deque, State, WorkerPc, MAX_TASKS, MAX_WORKERS, NO_TASK};
use std::fmt;

/// The injected fault of a model configuration, mirroring `nd-runtime`'s two
/// fault sources.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Clean run: no fault.
    None,
    /// The given task's work panics (on the first run; the second run models
    /// the post-recovery re-execution, which the real executor documents as
    /// supported after a faulted run).
    PanicAt(u8),
    /// The `RunBudget` deadline may be observed blown at *any* claim — the
    /// model branches nondeterministically at every claim until it trips, so
    /// all trip points are explored.
    DeadlineAnytime,
}

/// Deliberate protocol regressions.  Each mutation removes one line of the
/// real protocol; the checker must find a counterexample for every one of
/// them (and none for [`Mutation::None`]) — this is the model's own test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// The faithful protocol.
    None,
    /// The claim forgets to restore the dependency counter from its initial
    /// count (drops `CompiledGraph::claim_restore`): the re-executed run
    /// finds stale counters.
    SkipCounterRestore,
    /// Drained claims skip `latch.count_down()`: a cancelled run's latch
    /// never releases and the drain hangs.
    SkipDrainCountDown,
    /// Only the first ready successor is scheduled; further ready successors
    /// are dropped instead of pushed — a lost-wakeup deadlock.
    DropSecondReady,
    /// The tail-executed successor is *also* pushed onto the deque, so two
    /// workers can run it — breaks exactly-once claiming.
    SpawnReadyTwice,
    /// Every task writes result slot 0 instead of its own slot — the torn
    /// concurrent write the `PivotStore` ownership discipline forbids.
    SharedResultSlot,
}

/// One model-checking configuration: a DAG shape, a worker count, a fault,
/// how many back-to-back runs to explore, and an optional mutation.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    pub dag: Dag,
    pub workers: usize,
    pub fault: Fault,
    /// `2` exercises the reset/re-arm transition (counters must be
    /// bit-restored for the second run to claim correctly); `1` for quick
    /// sweeps.
    pub runs: u8,
    pub mutation: Mutation,
    /// Prune the visited set by worker symmetry (sound for a flat-topology
    /// pool; see [`State::worker_canonical`]).
    pub symmetry: bool,
}

impl Config {
    /// A clean two-run configuration with symmetry reduction on.
    pub fn new(dag: Dag, workers: usize, fault: Fault) -> Self {
        assert!((1..=MAX_WORKERS).contains(&workers));
        Config {
            dag,
            workers,
            fault,
            runs: 2,
            mutation: Mutation::None,
            symmetry: true,
        }
    }
}

/// Where an [`Action::Take`] got its task.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TakeSource {
    /// Popped from the worker's own deque (back — the depth-first order).
    OwnDeque,
    /// Taken from the global injector (front).
    Injector,
    /// Stolen from `victim`'s deque (front — breadth-first theft).
    Steal { victim: u8 },
}

/// One atomic protocol step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Worker `worker` takes `task` from a queue.
    Take {
        worker: u8,
        task: u8,
        source: TakeSource,
    },
    /// Worker `worker` claims `task`: counter restore plus the
    /// cancellation/deadline gate.  `deadline_trips` marks the branch where
    /// the armed deadline is observed blown at this claim.
    Claim {
        worker: u8,
        task: u8,
        deadline_trips: bool,
    },
    /// Worker `worker` runs `task`'s work (`panics` if the injected fault
    /// fires here).
    Work { worker: u8, task: u8, panics: bool },
    /// Worker `worker` decrements successor `succ` of `task` (`now_ready` if
    /// the counter hit zero).
    Decrement {
        worker: u8,
        task: u8,
        succ: u8,
        now_ready: bool,
    },
    /// Worker `worker` counts the latch down after `task`, then tail-executes
    /// `tail` (or goes idle).
    CountDown {
        worker: u8,
        task: u8,
        tail: Option<u8>,
    },
    /// The external thread observes the latch released and re-arms the
    /// reusable graph for its next run.
    Reset,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::Take {
                worker,
                task,
                source,
            } => match source {
                TakeSource::OwnDeque => write!(f, "w{worker}: pop t{task} from own deque"),
                TakeSource::Injector => write!(f, "w{worker}: take t{task} from injector"),
                TakeSource::Steal { victim } => {
                    write!(f, "w{worker}: steal t{task} from w{victim}")
                }
            },
            Action::Claim {
                worker,
                task,
                deadline_trips,
            } => {
                if deadline_trips {
                    write!(
                        f,
                        "w{worker}: claim t{task} — deadline observed blown, run cancelled"
                    )
                } else {
                    write!(f, "w{worker}: claim t{task} (restore counter, fault gate)")
                }
            }
            Action::Work {
                worker,
                task,
                panics,
            } => {
                if panics {
                    write!(f, "w{worker}: work t{task} — PANICS, run cancelled")
                } else {
                    write!(f, "w{worker}: work t{task}")
                }
            }
            Action::Decrement {
                worker,
                task,
                succ,
                now_ready,
            } => {
                if now_ready {
                    write!(
                        f,
                        "w{worker}: decrement t{succ} (successor of t{task}) → READY"
                    )
                } else {
                    write!(f, "w{worker}: decrement t{succ} (successor of t{task})")
                }
            }
            Action::CountDown { worker, task, tail } => match tail {
                Some(t) => write!(
                    f,
                    "w{worker}: latch.count_down after t{task}, tail-exec t{t}"
                ),
                None => write!(f, "w{worker}: latch.count_down after t{task}, go idle"),
            },
            Action::Reset => write!(f, "external: latch released — reset graph for next run"),
        }
    }
}

/// A violated invariant, reported on the transition (or terminal state) that
/// exposes it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// A task was claimed twice — exactly-once execution broken.
    DoubleClaim { task: u8 },
    /// A task was claimed while its dependency counter was still nonzero.
    ClaimUnready { task: u8, pending: u8 },
    /// A dependency counter was decremented below zero.
    CounterUnderflow { task: u8 },
    /// The latch was counted below zero (it reached zero more than once).
    LatchUnderflow,
    /// Two workers were concurrently inside work that writes the same result
    /// slot — a torn `PivotStore`-style write.
    TornWrite { slot: u8, writer: u8, other: u8 },
    /// At quiescence a live counter did not equal its initial count.
    CounterNotRestored { task: u8, expected: u8, found: u8 },
    /// At quiescence the latch had not released exactly once.
    LatchNotReleased { latch: u8, zeroed: u8 },
    /// Terminal state with unclaimed tasks: a ready strand is never claimed
    /// (lost wakeup) or the drain failed to terminate the run.
    Stuck { unclaimed_mask: u8, latch: u8 },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::DoubleClaim { task } => write!(f, "double claim of t{task}"),
            Violation::ClaimUnready { task, pending } => {
                write!(f, "claim of unready t{task} (pending = {pending})")
            }
            Violation::CounterUnderflow { task } => {
                write!(f, "dependency counter underflow on t{task}")
            }
            Violation::LatchUnderflow => write!(f, "latch counted below zero"),
            Violation::TornWrite {
                slot,
                writer,
                other,
            } => {
                write!(
                    f,
                    "torn write: t{writer} and t{other} concurrently in slot {slot}"
                )
            }
            Violation::CounterNotRestored {
                task,
                expected,
                found,
            } => write!(
                f,
                "counter of t{task} not restored at quiescence (expected {expected}, found {found})"
            ),
            Violation::LatchNotReleased { latch, zeroed } => write!(
                f,
                "latch not released exactly once at quiescence (latch = {latch}, zeroed {zeroed}×)"
            ),
            Violation::Stuck {
                unclaimed_mask,
                latch,
            } => write!(
                f,
                "stuck: terminal state with unclaimed tasks {unclaimed_mask:#08b} (latch = {latch})"
            ),
        }
    }
}

/// The transition system for one [`Config`].
pub struct Model {
    pub config: Config,
    initial_preds: [u8; MAX_TASKS],
    full_mask: u8,
}

impl Model {
    pub fn new(config: Config) -> Self {
        let n = config.dag.task_count();
        assert!((1..=MAX_TASKS).contains(&n));
        Model {
            initial_preds: config.dag.initial_preds(),
            full_mask: ((1u16 << n) - 1) as u8,
            config,
        }
    }

    /// The initial state: counters at their initial counts, the latch armed
    /// at the task count, and the roots submitted to the global injector in
    /// ascending order (the order `execute` pushes them).
    pub fn initial_state(&self) -> State {
        let mut injector = Deque::default();
        for r in self.config.dag.roots() {
            injector.push_back(r);
        }
        State {
            pending: self.initial_preds,
            claimed: 0,
            executed: 0,
            drained: 0,
            latch: self.config.dag.task_count() as u8,
            latch_zeroed: 0,
            cancelled: false,
            fault_fired: false,
            run: 0,
            injector,
            deques: [Deque::default(); MAX_WORKERS],
            workers: [WorkerPc::Idle; MAX_WORKERS],
        }
    }

    fn bit(task: u8) -> u8 {
        1 << task
    }

    /// The result slot task `t`'s work writes — its own index, unless the
    /// [`Mutation::SharedResultSlot`] regression aliases every task to slot 0.
    fn slot(&self, t: u8) -> u8 {
        if self.config.mutation == Mutation::SharedResultSlot {
            0
        } else {
            t
        }
    }

    /// All enabled transitions from `s`.  `Err` marks a transition that
    /// commits an invariant violation.
    pub fn successors(&self, s: &State) -> Vec<(Action, Result<State, Violation>)> {
        let mut out = Vec::new();
        for w in 0..self.config.workers {
            match s.workers[w] {
                WorkerPc::Idle => self.take_actions(s, w, &mut out),
                WorkerPc::Claiming { task } => {
                    out.push((
                        Action::Claim {
                            worker: w as u8,
                            task,
                            deadline_trips: false,
                        },
                        self.claim(s, w, task, false),
                    ));
                    if self.config.fault == Fault::DeadlineAnytime && !s.fault_fired && !s.cancelled
                    {
                        out.push((
                            Action::Claim {
                                worker: w as u8,
                                task,
                                deadline_trips: true,
                            },
                            self.claim(s, w, task, true),
                        ));
                    }
                }
                WorkerPc::Working { task } => {
                    let panics =
                        self.config.fault == Fault::PanicAt(task) && s.run == 0 && !s.fault_fired;
                    out.push((
                        Action::Work {
                            worker: w as u8,
                            task,
                            panics,
                        },
                        self.work(s, w, task, panics),
                    ));
                }
                WorkerPc::Finishing {
                    task,
                    next_succ,
                    first_ready,
                } => {
                    let nsucc = self.config.dag.successor_count(task as usize);
                    if (next_succ as usize) < nsucc {
                        let succ =
                            self.config.dag.successor(task as usize, next_succ as usize) as u8;
                        let now_ready = s.pending[succ as usize] == 1;
                        out.push((
                            Action::Decrement {
                                worker: w as u8,
                                task,
                                succ,
                                now_ready,
                            },
                            self.decrement(s, w, task, next_succ, first_ready, succ),
                        ));
                    } else {
                        let tail = if first_ready == NO_TASK {
                            None
                        } else {
                            Some(first_ready)
                        };
                        out.push((
                            Action::CountDown {
                                worker: w as u8,
                                task,
                                tail,
                            },
                            self.count_down(s, w, task, first_ready),
                        ));
                    }
                }
            }
        }
        if self.reset_enabled(s) {
            out.push((Action::Reset, self.reset(s)));
        }
        out
    }

    fn take_actions(&self, s: &State, w: usize, out: &mut Vec<(Action, Result<State, Violation>)>) {
        // Mirrors find_work's sources: own deque (back), then the global
        // injector (front), then steals (victim front).  The model exposes
        // all three as independently-enabled actions rather than a fixed
        // priority, so every interleaving the relaxed real ordering permits
        // is explored.  A failed steal (victim emptied between size check and
        // CAS) leaves the state unchanged — a stutter step — so it is not
        // generated.
        if let Some(&t) = s.deques[w].last() {
            let mut n = s.clone();
            n.deques[w].pop_back();
            n.workers[w] = WorkerPc::Claiming { task: t };
            out.push((
                Action::Take {
                    worker: w as u8,
                    task: t,
                    source: TakeSource::OwnDeque,
                },
                Ok(n),
            ));
        }
        if let Some(&t) = s.injector.first() {
            let mut n = s.clone();
            n.injector.take_front();
            n.workers[w] = WorkerPc::Claiming { task: t };
            out.push((
                Action::Take {
                    worker: w as u8,
                    task: t,
                    source: TakeSource::Injector,
                },
                Ok(n),
            ));
        }
        for v in 0..self.config.workers {
            if v == w {
                continue;
            }
            if let Some(&t) = s.deques[v].first() {
                let mut n = s.clone();
                n.deques[v].take_front();
                n.workers[w] = WorkerPc::Claiming { task: t };
                out.push((
                    Action::Take {
                        worker: w as u8,
                        task: t,
                        source: TakeSource::Steal { victim: v as u8 },
                    },
                    Ok(n),
                ));
            }
        }
    }

    fn claim(&self, s: &State, w: usize, t: u8, deadline_trips: bool) -> Result<State, Violation> {
        if s.claimed & Self::bit(t) != 0 {
            return Err(Violation::DoubleClaim { task: t });
        }
        if s.pending[t as usize] != 0 {
            return Err(Violation::ClaimUnready {
                task: t,
                pending: s.pending[t as usize],
            });
        }
        let mut n = s.clone();
        n.claimed |= Self::bit(t);
        if self.config.mutation != Mutation::SkipCounterRestore {
            n.pending[t as usize] = self.initial_preds[t as usize];
        }
        if deadline_trips {
            n.cancelled = true;
            n.fault_fired = true;
        }
        if n.cancelled {
            // Drain: full claim protocol, no work.
            n.drained |= Self::bit(t);
            n.workers[w] = WorkerPc::Finishing {
                task: t,
                next_succ: 0,
                first_ready: NO_TASK,
            };
        } else {
            // Entering the work window: this is where a second concurrent
            // writer of the same result slot would manifest.
            for v in 0..self.config.workers {
                if v == w {
                    continue;
                }
                if let WorkerPc::Working { task: u } = s.workers[v] {
                    if self.slot(u) == self.slot(t) {
                        return Err(Violation::TornWrite {
                            slot: self.slot(t),
                            writer: t,
                            other: u,
                        });
                    }
                }
            }
            n.workers[w] = WorkerPc::Working { task: t };
        }
        Ok(n)
    }

    fn work(&self, s: &State, w: usize, t: u8, panics: bool) -> Result<State, Violation> {
        let mut n = s.clone();
        if panics {
            // The unwind is caught; the fault cell records it and cancels the
            // run.  The task is neither executed nor drained.
            n.fault_fired = true;
            n.cancelled = true;
        } else {
            n.executed |= Self::bit(t);
        }
        n.workers[w] = WorkerPc::Finishing {
            task: t,
            next_succ: 0,
            first_ready: NO_TASK,
        };
        Ok(n)
    }

    fn decrement(
        &self,
        s: &State,
        w: usize,
        t: u8,
        next_succ: u8,
        first_ready: u8,
        succ: u8,
    ) -> Result<State, Violation> {
        if s.pending[succ as usize] == 0 {
            return Err(Violation::CounterUnderflow { task: succ });
        }
        let mut n = s.clone();
        n.pending[succ as usize] -= 1;
        let mut first = first_ready;
        if n.pending[succ as usize] == 0 {
            match self.config.mutation {
                Mutation::DropSecondReady => {
                    if first == NO_TASK {
                        first = succ;
                    }
                    // else: the ready successor is silently lost.
                }
                Mutation::SpawnReadyTwice => {
                    if first == NO_TASK {
                        first = succ;
                    }
                    // Pushed regardless — the tail copy and the deque copy
                    // will both be claimed.
                    n.deques[w].push_back(succ);
                }
                _ => {
                    if first == NO_TASK {
                        first = succ;
                    } else {
                        n.deques[w].push_back(succ);
                    }
                }
            }
        }
        n.workers[w] = WorkerPc::Finishing {
            task: t,
            next_succ: next_succ + 1,
            first_ready: first,
        };
        Ok(n)
    }

    fn count_down(&self, s: &State, w: usize, t: u8, first_ready: u8) -> Result<State, Violation> {
        let mut n = s.clone();
        let skip =
            self.config.mutation == Mutation::SkipDrainCountDown && s.drained & Self::bit(t) != 0;
        if !skip {
            if n.latch == 0 {
                return Err(Violation::LatchUnderflow);
            }
            n.latch -= 1;
            if n.latch == 0 {
                n.latch_zeroed += 1;
            }
        }
        n.workers[w] = if first_ready == NO_TASK {
            WorkerPc::Idle
        } else {
            // Inline tail-execution: the lone ready successor runs in place
            // (drained claims tail-exec too — the drain must visit every
            // task).
            WorkerPc::Claiming { task: first_ready }
        };
        Ok(n)
    }

    fn quiescent(&self, s: &State) -> bool {
        s.claimed == self.full_mask
            && s.injector.is_empty()
            && (0..self.config.workers)
                .all(|w| s.workers[w] == WorkerPc::Idle && s.deques[w].is_empty())
    }

    fn reset_enabled(&self, s: &State) -> bool {
        s.run + 1 < self.config.runs && self.quiescent(s)
    }

    fn reset(&self, s: &State) -> Result<State, Violation> {
        self.check_quiescence(s)?;
        let mut n = self.initial_state();
        n.run = s.run + 1;
        // The injected fault was consumed; the next run models the
        // documented post-fault recovery (re-execute after the faulted run).
        n.fault_fired = s.fault_fired;
        Ok(n)
    }

    /// The quiescence invariants: counters bit-restored, latch released
    /// exactly once.
    fn check_quiescence(&self, s: &State) -> Result<(), Violation> {
        for t in 0..self.config.dag.task_count() {
            if s.pending[t] != self.initial_preds[t] {
                return Err(Violation::CounterNotRestored {
                    task: t as u8,
                    expected: self.initial_preds[t],
                    found: s.pending[t],
                });
            }
        }
        if s.latch != 0 || s.latch_zeroed != 1 {
            return Err(Violation::LatchNotReleased {
                latch: s.latch,
                zeroed: s.latch_zeroed,
            });
        }
        Ok(())
    }

    /// Checks a terminal state (one with no enabled transitions).  The only
    /// legal terminal state is full quiescence of the final run; anything
    /// else is a liveness failure — a ready strand never claimed, or a drain
    /// that failed to release the run.
    pub fn check_terminal(&self, s: &State) -> Result<(), Violation> {
        if !self.quiescent(s) || s.run + 1 != self.config.runs {
            return Err(Violation::Stuck {
                unclaimed_mask: self.full_mask & !s.claimed,
                latch: s.latch,
            });
        }
        self.check_quiescence(s)
    }
}
