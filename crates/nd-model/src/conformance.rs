//! The conformance loop: schedules sampled from the model replay through the
//! *real* executor, proving the model and the implementation agree.
//!
//! A sampled schedule is one maximal path through the model — a seeded random
//! walk over the exact transition system the checker explores.  Its claim
//! order is then driven through [`nd_runtime::ScheduleDriver`], which
//! executes a real [`CompiledGraph`] one claim at a time on this thread using
//! the production protocol code (`claim_restore`, `finish_successors`, a real
//! `CountLatch` and fault cell).  The checks:
//!
//! 1. **Every model claim is accepted.**  The driver refuses double claims
//!    and claims of unready tasks, so acceptance of the whole order — and a
//!    bit-identical `claim_order()` — means the model only predicts schedules
//!    the implementation can take.
//! 2. **Fault partitions agree.**  For a panic fault the executed/drained
//!    split matches exactly on single-worker schedules; on multi-worker
//!    schedules the driver serializes the claims, so a task the model ran
//!    concurrently with the panic may drain in the replay — the agreement is
//!    the envelope `driver-executed ⊆ model-executed` and `model-drained ⊆
//!    driver-drained`.  For a deadline trip the split matches exactly at any
//!    worker count (cancellation happens *at a claim* in both).
//! 3. **The final verdict matches**: same `RunError` variant (and panicking
//!    task), and the graph's counters are bit-restored afterwards.

use crate::dag::Dag;
use crate::model::{Action, Config, Fault, Model, Mutation};
use nd_runtime::{CompiledGraph, RunError, ScheduleDriver, StepOutcome, TaskTable};
use std::sync::Arc;
use std::time::Duration;

/// One maximal path through the model, projected to what the executor can
/// observe.
#[derive(Clone, Debug)]
pub struct Schedule {
    pub dag: Dag,
    pub workers: usize,
    pub fault: Fault,
    /// Tasks in model claim order.
    pub claim_order: Vec<u8>,
    /// Bitmask of tasks whose work ran in the model.
    pub executed: u8,
    /// Bitmask of tasks the model drained.
    pub drained: u8,
    /// For [`Fault::DeadlineAnytime`] walks that tripped: the position in
    /// `claim_order` at which the deadline was observed blown.
    pub deadline_trip_at: Option<usize>,
}

/// Samples one schedule: a uniformly-random maximal path through `config`'s
/// transition system (xorshift64* seeded with `seed`, so samples are
/// reproducible).  `config.runs` should be 1 — the driver replays a single
/// execution.
pub fn sample_schedule(config: &Config, seed: u64) -> Schedule {
    assert_eq!(config.runs, 1, "replay covers a single run");
    assert_eq!(
        config.mutation,
        Mutation::None,
        "replay needs the faithful model"
    );
    let model = Model::new(*config);
    let mut rng = seed.wrapping_mul(2).wrapping_add(1); // any odd nonzero seed
    let mut state = model.initial_state();
    let mut claim_order = Vec::new();
    let mut deadline_trip_at = None;
    loop {
        let succs = model.successors(&state);
        if succs.is_empty() {
            break;
        }
        let (action, next) = &succs[next_index(&mut rng, succs.len())];
        if let Action::Claim {
            task,
            deadline_trips,
            ..
        } = *action
        {
            if deadline_trips {
                deadline_trip_at = Some(claim_order.len());
            }
            claim_order.push(task);
        }
        state = next
            .as_ref()
            .expect("faithful model has no violations")
            .clone();
    }
    Schedule {
        dag: config.dag,
        workers: config.workers,
        fault: config.fault,
        claim_order,
        executed: state.executed,
        drained: state.drained,
        deadline_trip_at,
    }
}

fn next_index(rng: &mut u64, len: usize) -> usize {
    // xorshift64* — plain Rust, no `rand` needed for a test-space sampler.
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    (rng.wrapping_mul(0x2545_f491_4f6c_dd1d) % len as u64) as usize
}

struct ReplayTable {
    panic_at: Option<u32>,
}

impl TaskTable for ReplayTable {
    fn run_task(&self, task: u32) {
        if self.panic_at == Some(task) {
            panic!("conformance-injected fault at task {task}");
        }
    }
    fn task_label(&self, _task: u32) -> &'static str {
        "model-replay"
    }
}

/// Replays `schedule` through the real executor and cross-checks every
/// observable against the model's prediction.  Returns a human-readable
/// description of the first disagreement, if any.
pub fn replay_through_executor(schedule: &Schedule) -> Result<(), String> {
    let n = schedule.dag.task_count();
    let graph = Arc::new(CompiledGraph::from_edges(
        n,
        &schedule.dag.edges(),
        Vec::new(),
    ));
    let panic_at = match schedule.fault {
        Fault::PanicAt(t) => Some(t as u32),
        _ => None,
    };
    let table = Arc::new(ReplayTable { panic_at });
    let mut driver = ScheduleDriver::new(&graph, &table);

    let mut driver_executed = 0u8;
    let mut driver_drained = 0u8;
    let mut driver_panicked = None;
    for (i, &task) in schedule.claim_order.iter().enumerate() {
        if schedule.deadline_trip_at == Some(i) {
            // The model observed the armed deadline blown at this claim; the
            // driver's budget is wall-clock, so the trip is mirrored through
            // the same first-fault-wins path a worker would take.
            driver.cancel(RunError::DeadlineExceeded {
                deadline: Duration::from_millis(1),
                elapsed: Duration::from_millis(2),
            });
        }
        match driver.step(task as u32) {
            Ok(StepOutcome::Executed) => driver_executed |= 1 << task,
            Ok(StepOutcome::Drained) => driver_drained |= 1 << task,
            Ok(StepOutcome::Panicked) => driver_panicked = Some(task),
            Err(e) => {
                return Err(format!(
                    "executor rejected model claim #{i} of t{task}: {e} \
                     (model order {:?})",
                    schedule.claim_order
                ))
            }
        }
    }

    let driver_order: Vec<u8> = driver.claim_order().iter().map(|&t| t as u8).collect();
    if driver_order != schedule.claim_order {
        return Err(format!(
            "claim order diverged: model {:?}, executor {:?}",
            schedule.claim_order, driver_order
        ));
    }

    // Partition agreement (see module docs for why multi-worker panic
    // schedules get an envelope rather than equality).
    let exact =
        schedule.workers == 1 || matches!(schedule.fault, Fault::None | Fault::DeadlineAnytime);
    if exact {
        if driver_executed != schedule.executed || driver_drained != schedule.drained {
            return Err(format!(
                "partition diverged: model executed {:#08b} drained {:#08b}, \
                 executor executed {driver_executed:#08b} drained {driver_drained:#08b}",
                schedule.executed, schedule.drained
            ));
        }
    } else {
        if driver_executed & !schedule.executed != 0 {
            return Err(format!(
                "executor executed tasks the model did not: {:#08b} ⊄ {:#08b}",
                driver_executed, schedule.executed
            ));
        }
        if schedule.drained & !driver_drained != 0 {
            return Err(format!(
                "model drained tasks the executor did not: {:#08b} ⊄ {:#08b}",
                schedule.drained, driver_drained
            ));
        }
    }
    if let Fault::PanicAt(k) = schedule.fault {
        if driver_panicked != Some(k) {
            return Err(format!(
                "expected the replay to panic at t{k}, got {driver_panicked:?}"
            ));
        }
    }

    let verdict = driver.finish();
    match (schedule.fault, schedule.deadline_trip_at, verdict) {
        (Fault::None, _, Ok(())) => {}
        (Fault::DeadlineAnytime, None, Ok(())) => {}
        (Fault::PanicAt(k), _, Err(RunError::Panicked { task, .. })) if task == k as u32 => {}
        (Fault::DeadlineAnytime, Some(_), Err(RunError::DeadlineExceeded { .. })) => {}
        (fault, trip, verdict) => {
            return Err(format!(
                "final verdict diverged: fault {fault:?}, trip {trip:?}, executor said {verdict:?}"
            ))
        }
    }
    if !graph.counters_are_reset() {
        return Err("graph counters not restored after replay".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::enumerate_dags;

    fn single_run(dag: Dag, workers: usize, fault: Fault) -> Config {
        let mut c = Config::new(dag, workers, fault);
        c.runs = 1;
        c
    }

    #[test]
    fn sampled_schedules_replay_bit_identically() {
        // ≥ 50 schedules across DAG shapes, worker counts and faults — the
        // acceptance bar for model/executor agreement.
        let mut replayed = 0usize;
        for (i, dag) in enumerate_dags(4).into_iter().enumerate() {
            for workers in 1..=3usize {
                let faults = [
                    Fault::None,
                    Fault::PanicAt((i % dag.task_count()) as u8),
                    Fault::DeadlineAnytime,
                ];
                for (f, fault) in faults.into_iter().enumerate() {
                    let seed = (i as u64) << 8 | (workers as u64) << 4 | f as u64;
                    let schedule = sample_schedule(&single_run(dag, workers, fault), seed ^ 0xDEAD);
                    assert_eq!(schedule.claim_order.len(), dag.task_count());
                    replay_through_executor(&schedule).unwrap();
                    replayed += 1;
                }
            }
        }
        assert!(replayed >= 50, "only {replayed} schedules replayed");
    }

    #[test]
    fn distinct_seeds_reach_distinct_interleavings() {
        let fork = Dag::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let orders: std::collections::HashSet<Vec<u8>> = (0..32)
            .map(|seed| sample_schedule(&single_run(fork, 2, Fault::None), seed).claim_order)
            .collect();
        assert!(orders.len() > 1, "sampler is degenerate");
        for order in &orders {
            assert_eq!(order[0], 0, "root must be claimed first");
        }
    }

    #[test]
    fn a_corrupted_schedule_is_rejected_by_the_executor() {
        // Flip a dependency-ordered pair: the driver must refuse it.  This is
        // the negative control for check #1 — acceptance is meaningful
        // because rejection is possible.
        let chain = Dag::from_edges(3, &[(0, 1), (1, 2)]);
        let mut schedule = sample_schedule(&single_run(chain, 1, Fault::None), 7);
        assert_eq!(schedule.claim_order, vec![0, 1, 2]);
        schedule.claim_order.swap(1, 2);
        let err = replay_through_executor(&schedule).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
    }
}
