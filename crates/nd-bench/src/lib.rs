//! # nd-bench — the experiment harness
//!
//! Each binary in `src/bin/` regenerates one of the analytical "tables/figures" of
//! the paper (see DESIGN.md §5 and EXPERIMENTS.md for the index):
//!
//! * `exp_spans` — E1–E7: NP vs ND spans for every algorithm, with fitted growth
//!   exponents (the `Θ(n log n)` → `Θ(n)` collapses).
//! * `exp_pcc` — E8 (Claim 1): parallel cache complexity `Q*(N; M)` sweeps.
//! * `exp_alpha` — E9 (Claims 2–3): parallelizability `α_max` estimates.
//! * `exp_sched` — E10–E11 (Theorems 1 and 3): space-bounded scheduler miss bounds
//!   and completion-time scaling versus work stealing and the perfect-balance bound.
//! * `exp_cache_q1` — E13: serial (depth-first) cache misses of the cache-oblivious
//!   recursive order versus the loop order.
//! * `exp_exec` — E14: real wall-clock comparison of flat work stealing versus the
//!   hierarchy-aware space-bounded executor (`nd-exec`) on MM, Cholesky, LU and
//!   2-D Floyd–Warshall, with cross-cluster steal counts, emitted as JSON;
//!   E15: executor hot-path microbenchmarks (per-task overhead, tasks/second,
//!   serial-chain tail-execution, rebuild-vs-reuse of a compiled MM graph);
//!   E16: rebuild-vs-reuse of the compiled LU and FW-2D drivers (the
//!   `algorithm_reuse` section of `BENCH_exec.json`);
//!   E17: the fire-rule frontend — DRS expansion + compile cost versus the
//!   access-set oracle rebuilding the same dependency structure, plus the
//!   reuse speedup of DRS-built MM and LCS graphs (the `drs_frontend`
//!   section of `BENCH_exec.json`);
//!   E18: storage layouts — the GEMM base case on strided row-major block
//!   views versus contiguous tile-packed slabs (warm full-sweep and cold
//!   sampled-tile regimes), plus whole-algorithm wall clock for
//!   MM / Cholesky / LU / FW-2D on both layouts (the `layouts` section of
//!   `BENCH_exec.json`);
//!   E19: the `nd-trace` subsystem — the runtime cost of toggling tracing on
//!   (empty-task DAG with the tracer off versus on) and the derived
//!   scheduler metrics of one traced anchored MM (the `trace` section of
//!   `BENCH_exec.json`; the compile-out-versus-disabled cost is measured by
//!   `nd-runtime`'s `sched_overhead` binary and bounded by CI);
//!   E20: the fault paths — drain-to-latch cancellation latency after a
//!   mid-run strand panic, `reset()` + rerun recovery cost, the trip latency
//!   of a blown wall-clock deadline, and the admission layer's shed
//!   accounting under a synthetic burst (the `faults` section of
//!   `BENCH_exec.json`; the cost of carrying the *uninstalled* `chaos`
//!   fault-injection harness is bounded by the same `sched_overhead`
//!   comparison, run by the CI chaos job).
//! * `exp_scaling` — E21: the multicore scaling study — strong and weak
//!   scaling of MM, LU and FW-2D at 1 / 2 / 8 workers on synthesized PMH
//!   machines, flat ring-order work stealing versus `σ·M_i`-anchored
//!   execution, with per-configuration steal-distance histograms and
//!   busy/steal/idle breakdowns from `nd-trace`, plus an in-process
//!   scalar-versus-SIMD GFLOP/s comparison of the packed GEMM base case and
//!   the detected CPU features (the `scaling`, `simd` and `cpu` sections
//!   spliced into the `BENCH_exec.json` written by `exp_exec`).
//! * `exp_serve` — E22: the serving layer (`nd-serve`) under mixed-tenant
//!   load with 1-in-50 chaos-injected panics and a deterministically
//!   poisoned graph key: acceptance/terminal accounting (the zero-loss
//!   invariant), per-tenant p50/p99 latency and throughput, retry volume
//!   and healthy-tenant availability, circuit-breaker trips / fast rejects
//!   / recovery, and graceful-drain timing (the `serve` section of
//!   `BENCH_exec.json`).
//!
//! The Criterion benches in `benches/` measure the real-runtime wall-clock
//! counterparts (E12) and the model-construction costs.

use nd_core::work_span::fit_power_law;

/// Formats a `(x, y)` series with a fitted power-law exponent, for the experiment
/// tables.
pub fn fitted_exponent(series: &[(f64, f64)]) -> f64 {
    fit_power_law(series).0
}

/// Renders one row of an aligned plain-text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_exponent_of_linear_series_is_one() {
        let series: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fitted_exponent(&series) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn row_aligns_cells() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
