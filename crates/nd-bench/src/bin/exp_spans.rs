//! E1–E7: span of every algorithm in the NP and ND models, across input sizes, with
//! fitted growth exponents.  Reproduces the paper's Section 3 claims:
//! TRS `Θ(n log n) → Θ(n)`, Cholesky `Θ(n log² n) → Θ(n)`, LCS and 1-D FW
//! `Θ(n log n) → Θ(n)`, MM `Θ(n)` in both models, LU / 2-D FW as dataflow
//! (makespan) improvements.

use nd_algorithms::common::{BuiltAlgorithm, Mode};
use nd_algorithms::{cholesky, fw1d, fw2d, lcs, lu, mm, trs};
use nd_bench::fitted_exponent;
use nd_core::work_span::WorkSpan;

fn main() {
    let base = 8;
    let sizes = [32usize, 64, 128, 256];
    println!("E1–E7: spans of the divide-and-conquer algorithms (base case {base})");
    println!("{:-<100}", "");
    println!(
        "{:<10} {:>6} | {:>12} {:>12} | {:>10} | paper (NP -> ND)",
        "algorithm", "n", "span NP", "span ND", "ND/NP"
    );

    type Builder = fn(usize, usize, Mode) -> nd_core::dag::AlgorithmDag;
    let fire_algos: Vec<(&str, Builder, &str)> = vec![
        (
            "mm",
            |n, b, m| mm::build_mm(n, b, m, 1.0).dag,
            "Θ(n) -> Θ(n)",
        ),
        (
            "trs",
            |n, b, m| trs::build_trs(n, b, m).dag,
            "Θ(n log n) -> Θ(n)",
        ),
        (
            "cholesky",
            |n, b, m| cholesky::build_cholesky(n, b, m).dag,
            "Θ(n log² n) -> Θ(n)",
        ),
        (
            "lcs",
            |n, b, m| lcs::build_lcs(n, b, m).dag,
            "Θ(n log n) -> Θ(n)",
        ),
        (
            "fw1d",
            |n, b, m| fw1d::build_fw1d(n, b, m).dag,
            "Θ(n log n) -> Θ(n)",
        ),
        (
            "fw2d",
            |n, b, m| fw2d::build_fw2d(n, b, m).dag,
            "blocked dataflow",
        ),
        (
            "lu",
            |n, b, m| lu::build_lu(n, b, m).dag,
            "blocked dataflow",
        ),
    ];

    for (name, build, paper) in &fire_algos {
        let mut np_series = Vec::new();
        let mut nd_series = Vec::new();
        for &n in &sizes {
            let np = WorkSpan::of_dag(&build(n, base, Mode::Np));
            let nd = WorkSpan::of_dag(&build(n, base, Mode::Nd));
            np_series.push((n as f64, np.span as f64));
            nd_series.push((n as f64, nd.span as f64));
            println!(
                "{:<10} {:>6} | {:>12} {:>12} | {:>10.3} | {}",
                name,
                n,
                np.span,
                nd.span,
                nd.span as f64 / np.span as f64,
                paper
            );
        }
        println!(
            "{:<10} fitted span exponent:  NP ~ n^{:.2}   ND ~ n^{:.2}",
            name,
            fitted_exponent(&np_series),
            fitted_exponent(&nd_series)
        );
        println!("{:-<100}", "");
    }

    println!("\nGreedy makespans on 16 processors (blocked algorithms, shows the ND lookahead):");
    for (name, build) in [(
        "lu",
        lu::build_lu as fn(usize, usize, Mode) -> BuiltAlgorithm,
    )] {
        for &n in &[128usize, 256] {
            let np = build(n, 16, Mode::Np).dag.greedy_makespan(16);
            let nd = build(n, 16, Mode::Nd).dag.greedy_makespan(16);
            println!(
                "  {name:<6} n={n:<5} makespan NP {np:>12}   ND {nd:>12}   speedup {:.2}x",
                np as f64 / nd as f64
            );
        }
    }
    for &n in &[128usize, 256] {
        let np = fw2d::build_fw2d(n, 16, Mode::Np).dag.greedy_makespan(16);
        let nd = fw2d::build_fw2d(n, 16, Mode::Nd).dag.greedy_makespan(16);
        println!(
            "  {:<6} n={n:<5} makespan NP {np:>12}   ND {nd:>12}   speedup {:.2}x",
            "fw2d",
            np as f64 / nd as f64
        );
    }
}
