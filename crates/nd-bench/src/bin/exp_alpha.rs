//! E9 (Claims 2–3): parallelizability `α_max`.
//!
//! Claim 2 gives `α_max ≈ 1` for recursive matrix multiplication; Claim 3 shows the
//! NP-model TRS loses parallelizability when `N/M < M`, while the ND model restores
//! it.  This binary estimates `α_max` numerically: the largest `α` for which
//! `Q̂_α ≤ c_U · Q*` over a family of instances.

use nd_algorithms::common::Mode;
use nd_algorithms::{lcs, mm, trs};
use nd_core::parallelizability::{default_alpha_grid, estimate_alpha_max, Instance};

fn main() {
    let base = 8;
    let m = 4096; // cache size parameter of the ECC
    let c_u = 4.0;
    let sizes = [64usize, 128, 256];
    let alphas = default_alpha_grid();
    println!("E9 (Claims 2–3): parallelizability α_max  (M = {m}, c_U = {c_u}, base {base})");
    println!("{:-<78}", "");
    println!(
        "{:<16} {:>10} {:>10} | comment",
        "algorithm", "α_max NP", "α_max ND"
    );

    type Builder = fn(usize, usize, Mode) -> nd_algorithms::BuiltAlgorithm;
    let algos: Vec<(&str, Builder, &str)> = vec![
        (
            "mm",
            (|n, b, md| mm::build_mm(n, b, md, 1.0)) as Builder,
            "Claim 2: α_max ≈ 1 − o(1) already in NP",
        ),
        (
            "trs",
            |n, b, md| trs::build_trs(n, b, md),
            "Claim 3: NP degrades, ND recovers MM-like α_max",
        ),
        (
            "lcs",
            |n, b, md| lcs::build_lcs(n, b, md),
            "wavefront: ND exposes the diagonal parallelism",
        ),
    ];

    for (name, build, comment) in algos {
        let mut estimates = Vec::new();
        for mode in [Mode::Np, Mode::Nd] {
            let built: Vec<_> = sizes.iter().map(|&n| build(n, base, mode)).collect();
            let instances: Vec<Instance<'_>> = built
                .iter()
                .map(|b| Instance {
                    tree: &b.tree,
                    dag: &b.dag,
                    root: b.tree.root(),
                })
                .collect();
            let est = estimate_alpha_max(&instances, m, &alphas, c_u);
            estimates.push(est.alpha_max);
        }
        println!(
            "{:<16} {:>10.2} {:>10.2} | {}",
            name, estimates[0], estimates[1], comment
        );
    }
    println!("{:-<78}", "");
    println!("Higher α_max ⇒ the space-bounded scheduler can keep (M_i/M_{{i-1}})^α_max");
    println!("subclusters busy per cache level (Theorem 3).");
}
