//! E8 (Claim 1): parallel cache complexity `Q*(N; M)`.
//!
//! For the dense algorithms (MM, TRS, Cholesky) the paper claims
//! `Q*(N; M) = O(N^{1.5} / M^{0.5})` with `N = n²`, and for LCS `Q*(n; M) = O(n²/M)`
//! — identical in the NP and ND models (the spawn tree does not change).  This
//! binary sweeps `M` and `n`, prints the measured `Q*`, and fits the exponent of the
//! `1/M` dependence.

use nd_algorithms::common::Mode;
use nd_algorithms::{cholesky, lcs, mm, trs};
use nd_bench::fitted_exponent;
use nd_core::pcc::pcc;

fn main() {
    let base = 8;
    let n = 256;
    let ms = [64u64, 256, 1024, 4096, 16384];
    println!("E8 (Claim 1): parallel cache complexity Q*(N; M) at n = {n} (base {base})");
    println!("{:-<95}", "");
    println!(
        "{:<10} {:>8} | {:>12} {:>12} | {:>22}",
        "algorithm", "M", "Q* (NP)", "Q* (ND)", "paper shape"
    );

    type Builder = fn(usize, usize, Mode) -> nd_algorithms::BuiltAlgorithm;
    let algos: Vec<(&str, Builder, &str, f64)> = vec![
        (
            "mm",
            (|n, b, m| mm::build_mm(n, b, m, 1.0)) as Builder,
            "O(N^1.5/M^0.5)",
            -0.5,
        ),
        (
            "trs",
            |n, b, m| trs::build_trs(n, b, m),
            "O(N^1.5/M^0.5)",
            -0.5,
        ),
        (
            "cholesky",
            |n, b, m| cholesky::build_cholesky(n, b, m),
            "O(N^1.5/M^0.5)",
            -0.5,
        ),
        ("lcs", |n, b, m| lcs::build_lcs(n, b, m), "O(n^2/M)", -1.0),
    ];

    for (name, build, shape, expected_m_exp) in algos {
        let np = build(n, base, Mode::Np);
        let nd = build(n, base, Mode::Nd);
        let mut series = Vec::new();
        for &m in &ms {
            let q_np = pcc(&np.tree, np.tree.root(), m);
            let q_nd = pcc(&nd.tree, nd.tree.root(), m);
            // The leading Σ-sizes term is identical across models; only the O(1)
            // glue-node term differs (the NP and ND spawn trees nest their
            // composition constructs slightly differently).
            let diff = q_np.abs_diff(q_nd) as f64;
            assert!(
                diff <= 0.02 * q_np as f64 + 64.0,
                "Q* should agree across models up to the glue term: {q_np} vs {q_nd}"
            );
            series.push((m as f64, q_nd as f64));
            println!(
                "{:<10} {:>8} | {:>12} {:>12} | {:>22}",
                name, m, q_np, q_nd, shape
            );
        }
        let m_exp = fitted_exponent(&series);
        println!(
            "{:<10} fitted M-exponent: {:+.2}   (paper: {:+.1}; the flat tail appears once M exceeds the input)",
            name, m_exp, expected_m_exp
        );
        println!("{:-<95}", "");
    }

    // Growth in N at fixed M for the dense algorithms (expect exponent ≈ 1.5 in N = n²,
    // i.e. ≈ 3 in n) and ≈ 2 in n for LCS.
    println!("\nGrowth in n at fixed M = 1024:");
    let sizes = [64usize, 128, 256, 512];
    for (name, build) in [
        ("trs", (|n, b, m| trs::build_trs(n, b, m)) as Builder),
        ("lcs", |n, b, m| lcs::build_lcs(n, b, m)),
    ] {
        let series: Vec<(f64, f64)> = sizes
            .iter()
            .map(|&n| {
                let built = build(n, base, Mode::Nd);
                (n as f64, pcc(&built.tree, built.tree.root(), 1024) as f64)
            })
            .collect();
        println!(
            "  {:<10} Q* ~ n^{:.2}   (paper: n^3 for dense via N^1.5, n^2 for LCS)",
            name,
            fitted_exponent(&series)
        );
    }
}
