//! E21: the multicore scaling study — strong and weak scaling of MM, LU and
//! 2-D Floyd–Warshall at 1, 2 and 8 workers, flat work stealing versus the
//! `σ·M_i`-anchored executor, with per-configuration steal-distance histograms
//! and busy/steal/idle breakdowns from one traced repetition — plus the
//! SIMD microkernel section: the packed GEMM base case timed in-process with
//! the scalar oracle and the AVX2+FMA kernel (the `simd` section), and the
//! host CPU feature metadata the numbers were produced under (`cpu`).
//!
//! Worker counts come from *synthesized* two-level PMH machines, not host
//! detection, so the study is reproducible anywhere: p = 1 (one core under
//! one cache path), p = 2 (two cores sharing an L1-level cache), p = 8 (two
//! root clusters of two L1 pairs — three steal-distance classes).  On hosts
//! with fewer physical cores than p the runs are oversubscribed; the
//! `host_parallelism` / `oversubscribed` fields record this so the scaling
//! curves are read honestly.
//!
//! * **strong** scaling holds the problem at `n × n` while p grows;
//! * **weak** scaling grows the problem as `n_p = n₁ · p^{1/3}` (cubic-work
//!   algorithms: the work per worker stays constant, the ideal curve is a
//!   flat wall-clock line).
//!
//! Timing repetitions run untraced (tracing off is the measured
//! configuration); one extra traced repetition per configuration yields the
//! steal-distance histogram and the per-worker busy/steal/idle split.  The
//! three sections are spliced into `BENCH_exec.json` after `exp_exec`'s
//! sections (run `exp_exec` first; this binary preserves its output and
//! replaces only the `scaling` / `simd` / `cpu` tail).
//!
//! Usage: `cargo run --release --bin exp_scaling -- [n] [reps]`
//! (default 256, 3).

use nd_algorithms::common::{BuiltAlgorithm, Mode};
use nd_algorithms::driver;
use nd_algorithms::exec::ExecContext;
use nd_algorithms::fw2d::{apsp_parallel, build_fw2d};
use nd_algorithms::lu::{build_lu, lu_parallel};
use nd_algorithms::mm::{build_mm, multiply_parallel};
use nd_exec::execute::{apsp_anchored, lu_anchored, multiply_anchored};
use nd_exec::pool::flat_topology_with_distances;
use nd_exec::{AnchorConfig, HierarchicalPool, StealPolicy};
use nd_linalg::fw::random_digraph;
use nd_linalg::gemm::{gemm_block_packed, gemm_pack_len};
use nd_linalg::simd;
use nd_linalg::Matrix;
use nd_pmh::config::{CacheLevelSpec, PmhConfig};
use nd_pmh::machine::MachineTree;
use nd_runtime::pool::with_pack_scratch;
use nd_runtime::ThreadPool;
use nd_trace::Trace;
use std::fmt::Write as _;
use std::time::Instant;

/// The worker counts of the study (fixed by the synthesized machines below).
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A synthesized two-level PMH with exactly `p` processors.  All three
/// machines share the same level sizes, so the anchoring decomposition sees
/// the same cache capacities and only the parallelism changes:
///
/// * `p = 1` — one core, one cache path (the serial baseline);
/// * `p = 2` — two cores under one shared L1-level cache;
/// * `p = 8` — two root clusters × two L1 pairs × two cores: steals have
///   three distance classes (same-L1, cross-L1, cross-cluster).
fn scaling_machine(p: usize) -> MachineTree {
    let cfg = match p {
        1 => PmhConfig::new(
            vec![
                CacheLevelSpec::new(1 << 10, 1, 4),
                CacheLevelSpec::new(1 << 14, 1, 16),
            ],
            1,
        ),
        2 => PmhConfig::new(
            vec![
                CacheLevelSpec::new(1 << 10, 2, 4),
                CacheLevelSpec::new(1 << 14, 1, 16),
            ],
            1,
        ),
        8 => PmhConfig::new(
            vec![
                CacheLevelSpec::new(1 << 10, 2, 4),
                CacheLevelSpec::new(1 << 14, 2, 16),
            ],
            2,
        ),
        _ => panic!("no synthesized machine for p = {p}"),
    };
    let machine = MachineTree::build(&cfg);
    assert_eq!(machine.processor_count(), p);
    machine
}

/// Weak-scaling problem size: `n₁ · p^{1/3}` rounded to a multiple of 16
/// (cubic-work algorithms — constant work per worker; the rounding keeps
/// enough factors of two for [`base_for`] to find a power-of-two split).
fn weak_n(n1: usize, p: usize) -> usize {
    let raw = (n1 as f64) * (p as f64).cbrt();
    ((raw / 16.0).round() as usize).max(1) * 16
}

/// Base-case size for a problem of size `n`: halve until ≤ 32 (the recursive
/// builders require `n / base` to be a power of two).
fn base_for(n: usize) -> usize {
    let mut b = n;
    while b > 32 && b.is_multiple_of(2) {
        b /= 2;
    }
    b
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let dt = start.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    (best, total / reps as f64)
}

fn u64_list(values: impl Iterator<Item = u64>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// The compact per-configuration trace summary: where the workers' time went
/// and how far their steals travelled.
fn trace_summary_json(trace: &Trace) -> String {
    let m = &trace.metrics;
    let busy: u64 = m.per_worker.iter().map(|w| w.busy_ns).sum();
    let steal: u64 = m.per_worker.iter().map(|w| w.steal_ns).sum();
    let idle: u64 = m.per_worker.iter().map(|w| w.idle_ns).sum();
    format!(
        "{{\"steals\":{},\"steal_distance_histogram\":{},\"busy_ns\":{},\
\"steal_ns\":{},\"idle_ns\":{}}}",
        m.steals,
        u64_list(m.steal_distance_histogram.iter().copied()),
        busy,
        steal,
        idle
    )
}

/// Steals that crossed a level-1 cluster boundary (distance class ≥ 1).
fn cross_steals(by_distance: &[u64]) -> u64 {
    by_distance.iter().skip(1).sum()
}

struct ScalingEntry {
    mode: &'static str,
    algorithm: &'static str,
    executor: &'static str,
    workers: usize,
    n: usize,
    best_seconds: f64,
    mean_seconds: f64,
    total_steals: u64,
    cross_cluster_steals: u64,
    /// `best_seconds(p = 1) / best_seconds(p)` within the same
    /// (mode, algorithm, executor) series.  For strong scaling this is the
    /// speedup (ideal: p); for weak scaling it is the scaled efficiency
    /// (ideal: 1.0) because the work grows with p.
    rel_vs_p1: f64,
    trace_json: String,
}

impl ScalingEntry {
    fn json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"algorithm\":\"{}\",\"executor\":\"{}\",\
\"workers\":{},\"n\":{},\"best_seconds\":{:.6},\"mean_seconds\":{:.6},\
\"rel_vs_p1\":{:.3},\"total_steals\":{},\"cross_cluster_steals\":{},\
\"trace\":{}}}",
            self.mode,
            self.algorithm,
            self.executor,
            self.workers,
            self.n,
            self.best_seconds,
            self.mean_seconds,
            self.rel_vs_p1,
            self.total_steals,
            self.cross_cluster_steals,
            self.trace_json
        )
    }
}

/// The three algorithms of the study and everything needed to run and trace
/// them at one problem size.
#[derive(Clone, Copy)]
enum Alg {
    Mm,
    Lu,
    Fw2d,
}

impl Alg {
    fn name(self) -> &'static str {
        match self {
            Alg::Mm => "mm",
            Alg::Lu => "lu",
            Alg::Fw2d => "fw2d",
        }
    }

    fn build(self, n: usize, base: usize) -> BuiltAlgorithm {
        match self {
            Alg::Mm => build_mm(n, base, Mode::Nd, 1.0),
            Alg::Lu => build_lu(n, base, Mode::Nd),
            Alg::Fw2d => build_fw2d(n, base, Mode::Nd),
        }
    }
}

/// The per-size input set (regenerated for every weak-scaling size; the
/// seeds match `exp_exec` so strong-scaling numbers are comparable).
struct Inputs {
    a: Matrix,
    b: Matrix,
    lua: Matrix,
    d0: Matrix,
}

impl Inputs {
    fn generate(n: usize) -> Self {
        Inputs {
            a: Matrix::random(n, n, 1),
            b: Matrix::random(n, n, 2),
            lua: Matrix::random(n, n, 5),
            d0: random_digraph(n, 4, 6),
        }
    }
}

/// One configuration measured on the flat (ring-stealing) pool: `reps` timed
/// untraced repetitions, then one traced repetition for the histogram and the
/// busy/steal/idle split.
fn measure_flat(
    machine: &MachineTree,
    alg: Alg,
    inputs: &Inputs,
    n: usize,
    base: usize,
    reps: usize,
) -> (f64, f64, u64, u64, String) {
    let pool = ThreadPool::with_topology(flat_topology_with_distances(machine));
    let before = pool.steals_by_distance();
    let (best, mean) = time_reps(reps, || match alg {
        Alg::Mm => {
            let mut c = Matrix::zeros(n, n);
            multiply_parallel(&pool, &inputs.a, &inputs.b, &mut c, Mode::Nd, base);
            std::hint::black_box(&c);
        }
        Alg::Lu => {
            let mut a = inputs.lua.clone();
            lu_parallel(&pool, &mut a, Mode::Nd, base);
            std::hint::black_box(&a);
        }
        Alg::Fw2d => {
            let mut d = inputs.d0.clone();
            apsp_parallel(&pool, &mut d, Mode::Nd, base);
            std::hint::black_box(&d);
        }
    });
    let after = pool.steals_by_distance();
    let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();

    let built = alg.build(n, base);
    let trace = match alg {
        Alg::Mm => {
            let mut c = Matrix::zeros(n, n);
            let mut am = inputs.a.clone();
            let mut bm = inputs.b.clone();
            let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
            let (stats, trace) = driver::run_once_traced(&pool, &built, &ctx);
            stats.expect("traced mm run");
            trace
        }
        Alg::Lu => {
            let mut a = inputs.lua.clone();
            let ctx = ExecContext::with_pivots(&mut [&mut a], n);
            let (stats, trace) = driver::run_once_traced(&pool, &built, &ctx);
            stats.expect("traced lu run");
            trace
        }
        Alg::Fw2d => {
            let mut d = inputs.d0.clone();
            let ctx = ExecContext::from_matrices(&mut [&mut d]);
            let (stats, trace) = driver::run_once_traced(&pool, &built, &ctx);
            stats.expect("traced fw2d run");
            trace
        }
    };
    (
        best,
        mean,
        delta.iter().sum(),
        cross_steals(&delta),
        trace_summary_json(&trace),
    )
}

/// One configuration measured on the anchored (nearest-cluster-first) pool.
fn measure_anchored(
    machine: &MachineTree,
    alg: Alg,
    inputs: &Inputs,
    n: usize,
    base: usize,
    reps: usize,
    cfg: &AnchorConfig,
) -> (f64, f64, u64, u64, String) {
    let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
    let before = pool.steals_by_distance();
    let (best, mean) = time_reps(reps, || match alg {
        Alg::Mm => {
            let mut c = Matrix::zeros(n, n);
            multiply_anchored(&pool, &inputs.a, &inputs.b, &mut c, base, cfg);
            std::hint::black_box(&c);
        }
        Alg::Lu => {
            let mut a = inputs.lua.clone();
            lu_anchored(&pool, &mut a, base, cfg);
            std::hint::black_box(&a);
        }
        Alg::Fw2d => {
            let mut d = inputs.d0.clone();
            apsp_anchored(&pool, &mut d, base, cfg);
            std::hint::black_box(&d);
        }
    });
    let after = pool.steals_by_distance();
    let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();

    let built = alg.build(n, base);
    let trace = match alg {
        Alg::Mm => {
            let mut c = Matrix::zeros(n, n);
            let mut am = inputs.a.clone();
            let mut bm = inputs.b.clone();
            let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
            let (_, trace) = nd_exec::execute::run_anchored_traced(&pool, &built, &ctx, cfg);
            trace
        }
        Alg::Lu => {
            let mut a = inputs.lua.clone();
            let ctx = ExecContext::with_pivots(&mut [&mut a], n);
            let (_, trace) = nd_exec::execute::run_anchored_traced(&pool, &built, &ctx, cfg);
            trace
        }
        Alg::Fw2d => {
            let mut d = inputs.d0.clone();
            let ctx = ExecContext::from_matrices(&mut [&mut d]);
            let (_, trace) = nd_exec::execute::run_anchored_traced(&pool, &built, &ctx, cfg);
            trace
        }
    };
    (
        best,
        mean,
        delta.iter().sum(),
        cross_steals(&delta),
        trace_summary_json(&trace),
    )
}

/// The `simd` section: the packed GEMM base case timed in-process under the
/// scalar oracle (`force_scalar(true)`) and under the ambient dispatch
/// (`force_scalar(false)` — the AVX2+FMA kernel where detected, unless
/// `ND_FORCE_SCALAR` pins the process to scalar).  Same sweep, same packing,
/// same op order on both sides; interleaved warm-up so neither side pays the
/// cold caches.
struct SimdGemmBench {
    b: usize,
    sweep_n: usize,
    scalar_gflops: f64,
    simd_gflops: f64,
    speedup: f64,
}

impl SimdGemmBench {
    fn json(&self) -> String {
        format!(
            "{{\"b\":{},\"sweep_n\":{},\"scalar_gflops\":{:.2},\
\"simd_gflops\":{:.2},\"speedup\":{:.3}}}",
            self.b, self.sweep_n, self.scalar_gflops, self.simd_gflops, self.speedup
        )
    }
}

fn bench_simd_gemm(b: usize, reps: usize) -> SimdGemmBench {
    let reps = reps.max(3);
    let sweep_n = 8 * b;
    let g = sweep_n / b;
    let a = Matrix::random(sweep_n, sweep_n, 91);
    let bm = Matrix::random(sweep_n, sweep_n, 92);
    let mut am = a.clone();
    let mut bmm = bm.clone();
    let mut c = Matrix::zeros(sweep_n, sweep_n);
    let flops = 2.0 * (sweep_n as f64).powi(3);

    let mut sweep = || {
        let (cv, av, bv) = (c.as_ptr_view(), am.as_ptr_view(), bmm.as_ptr_view());
        with_pack_scratch(gemm_pack_len(b, b, b), |scratch| {
            for bi in 0..g {
                for bj in 0..g {
                    for bk in 0..g {
                        // SAFETY: single-threaded sweep on disjoint C tiles;
                        // scratch is this thread's arena.
                        unsafe {
                            gemm_block_packed(
                                cv.block(bi * b, bj * b, b, b),
                                av.block(bi * b, bk * b, b, b),
                                bv.block(bk * b, bj * b, b, b),
                                1.0,
                                scratch,
                            );
                        }
                    }
                }
            }
        });
    };

    // Scalar oracle first, ambient dispatch second, one warm-up sweep each.
    simd::force_scalar(true);
    sweep();
    let (scalar_best, _) = time_reps(reps, &mut sweep);
    simd::force_scalar(false);
    sweep();
    let (simd_best, _) = time_reps(reps, &mut sweep);
    std::hint::black_box(&c);

    SimdGemmBench {
        b,
        sweep_n,
        scalar_gflops: flops / scalar_best / 1e9,
        simd_gflops: flops / simd_best / 1e9,
        speedup: scalar_best / simd_best,
    }
}

/// The `cpu` metadata section: what the numbers in this file were produced
/// on and which kernel path the process resolved.
fn cpu_json() -> String {
    let line =
        std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(64);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{{\"arch\":\"{}\",\"avx2_fma\":{},\"cache_line_bytes\":{},\"cores\":{},\
\"kernel\":\"{}\",\"simd_active\":{},\"forced_scalar_env\":{}}}",
        std::env::consts::ARCH,
        simd::detected_avx2_fma(),
        line,
        cores,
        simd::kernel_name(),
        simd::simd_active(),
        std::env::var("ND_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    )
}

/// Splices the `scaling` / `simd` / `cpu` sections onto `exp_exec`'s
/// `BENCH_exec.json` (or a fresh skeleton when it does not exist), replacing
/// any previous run of this binary.
fn splice_sections(scaling: &str, simd_sec: &str, cpu: &str) {
    let base = std::fs::read_to_string("BENCH_exec.json")
        .unwrap_or_else(|_| String::from("{\n  \"experiment\": \"exp_exec\"\n}\n"));
    let head = match base.find(",\n  \"scaling\":") {
        Some(i) => base[..i].to_string(),
        None => {
            let t = base.trim_end();
            let t = t
                .strip_suffix('}')
                .expect("BENCH_exec.json is not a JSON object");
            t.trim_end().to_string()
        }
    };
    let file = format!(
        "{head},\n  \"scaling\": {scaling},\n  \"simd\": {simd_sec},\n  \"cpu\": {cpu}\n}}\n"
    );
    std::fs::write("BENCH_exec.json", &file).expect("failed to write BENCH_exec.json");
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let cfg = AnchorConfig::default();
    let host_parallelism = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let oversubscribed = host_parallelism < *WORKER_COUNTS.iter().max().unwrap();
    eprintln!(
        "exp_scaling: n = {n}, reps = {reps}, workers {WORKER_COUNTS:?}, \
host parallelism {host_parallelism} (oversubscribed: {oversubscribed}), \
kernel {}",
        simd::kernel_name()
    );

    // ------------------------------------------------- SIMD section ----
    // Runs first and restores ambient dispatch, so every scaling run below
    // uses the process's resolved kernel path.
    let mut simd_rows = Vec::new();
    for b in [32usize, 64] {
        let bench = bench_simd_gemm(b, reps);
        eprintln!(
            "exp_scaling: simd gemm b={b}: scalar {:.2} GFLOP/s, simd {:.2} GFLOP/s ({:.2}x)",
            bench.scalar_gflops, bench.simd_gflops, bench.speedup
        );
        simd_rows.push(bench.json());
    }
    let simd_section = format!(
        "{{\n    \"kernel\": \"{}\",\n    \"active\": {},\n    \"gemm\": [\n      {}\n    ]\n  }}",
        simd::kernel_name(),
        simd::simd_active(),
        simd_rows.join(",\n      ")
    );
    for row in &simd_rows {
        println!("{{\"experiment\":\"exp_scaling\",\"section\":\"simd\",\"bench\":{row}}}");
    }

    // ---------------------------------------------- scaling study ----
    let n1_weak = weak_n(n / 2, 1);
    let weak_sizes: Vec<usize> = WORKER_COUNTS.iter().map(|&p| weak_n(n / 2, p)).collect();
    let mut entries: Vec<ScalingEntry> = Vec::new();
    for (mi, mode) in ["strong", "weak"].into_iter().enumerate() {
        for (pi, &p) in WORKER_COUNTS.iter().enumerate() {
            let n_run = if mi == 0 { n } else { weak_sizes[pi] };
            let base = base_for(n_run);
            let machine = scaling_machine(p);
            let inputs = Inputs::generate(n_run);
            for alg in [Alg::Mm, Alg::Lu, Alg::Fw2d] {
                eprintln!(
                    "exp_scaling: {mode} {} p={p} n={n_run} (base {base})",
                    alg.name()
                );
                let (best, mean, steals, cross, trace) =
                    measure_flat(&machine, alg, &inputs, n_run, base, reps);
                entries.push(ScalingEntry {
                    mode,
                    algorithm: alg.name(),
                    executor: "flat-ws",
                    workers: p,
                    n: n_run,
                    best_seconds: best,
                    mean_seconds: mean,
                    total_steals: steals,
                    cross_cluster_steals: cross,
                    rel_vs_p1: 1.0,
                    trace_json: trace,
                });
                let (best, mean, steals, cross, trace) =
                    measure_anchored(&machine, alg, &inputs, n_run, base, reps, &cfg);
                entries.push(ScalingEntry {
                    mode,
                    algorithm: alg.name(),
                    executor: "nd-exec",
                    workers: p,
                    n: n_run,
                    best_seconds: best,
                    mean_seconds: mean,
                    total_steals: steals,
                    cross_cluster_steals: cross,
                    rel_vs_p1: 1.0,
                    trace_json: trace,
                });
            }
        }
    }

    // Fill `rel_vs_p1` from each (mode, algorithm, executor) series' p = 1 run.
    let baselines: Vec<(&str, &str, &str, f64)> = entries
        .iter()
        .filter(|e| e.workers == 1)
        .map(|e| (e.mode, e.algorithm, e.executor, e.best_seconds))
        .collect();
    for e in &mut entries {
        if let Some(&(_, _, _, t1)) = baselines
            .iter()
            .find(|(m, a, x, _)| *m == e.mode && *a == e.algorithm && *x == e.executor)
        {
            e.rel_vs_p1 = t1 / e.best_seconds;
        }
    }

    let entry_rows: Vec<String> = entries.iter().map(|e| e.json()).collect();
    for row in &entry_rows {
        println!("{{\"experiment\":\"exp_scaling\",\"section\":\"scaling\",\"bench\":{row}}}");
    }
    let scaling_section = format!(
        "{{\n    \"workers\": {},\n    \"strong_n\": {n},\n    \"weak_n1\": {n1_weak},\n    \
\"weak_ns\": {},\n    \"host_parallelism\": {host_parallelism},\n    \
\"oversubscribed\": {oversubscribed},\n    \"entries\": [\n      {}\n    ]\n  }}",
        u64_list(WORKER_COUNTS.iter().map(|&p| p as u64)),
        u64_list(weak_sizes.iter().map(|&x| x as u64)),
        entry_rows.join(",\n      ")
    );

    splice_sections(&scaling_section, &simd_section, &cpu_json());
    eprintln!("exp_scaling: spliced scaling/simd/cpu sections into BENCH_exec.json");
}
