//! E13: serial cache complexity of the depth-first traversal.
//!
//! The divide-and-conquer algorithms are cache-oblivious: their sequential
//! (depth-first) execution incurs `O(n³/(B·√M))` misses for matrix multiplication in
//! the ideal cache model, versus `Θ(n³/B)` for the row-major loop order once the
//! matrices exceed the cache.  This binary replays address traces of both orders
//! through the ideal-cache simulator of `nd-pmh`.

use nd_bench::fitted_exponent;
use nd_pmh::trace::{trace_loop_mm, trace_recursive_mm};

fn main() {
    println!("E13: serial ideal-cache misses of matrix multiplication (B = 8 words)");
    println!("{:-<84}", "");
    println!(
        "{:>6} {:>10} | {:>14} {:>14} | {:>10}",
        "n", "M (words)", "loop order", "recursive", "ratio"
    );
    let line = 8;
    for &n in &[32u64, 48, 64] {
        for &m in &[512u64, 2048, 8192] {
            let loop_misses = trace_loop_mm(n).misses_in(m, line);
            let rec_misses = trace_recursive_mm(n, 8).misses_in(m, line);
            println!(
                "{:>6} {:>10} | {:>14} {:>14} | {:>10.2}",
                n,
                m,
                loop_misses,
                rec_misses,
                loop_misses as f64 / rec_misses as f64
            );
        }
    }

    // Shape in M for the recursive order: expect misses ~ M^{-1/2}.
    let n = 64;
    let ms = [256u64, 1024, 4096];
    let series: Vec<(f64, f64)> = ms
        .iter()
        .map(|&m| (m as f64, trace_recursive_mm(n, 8).misses_in(m, line) as f64))
        .collect();
    println!("{:-<84}", "");
    println!(
        "recursive order at n = {n}: misses ~ M^{:.2}   (cache-oblivious bound: M^-0.5)",
        fitted_exponent(&series)
    );
    let series_loop: Vec<(f64, f64)> = ms
        .iter()
        .map(|&m| (m as f64, trace_loop_mm(n).misses_in(m, line) as f64))
        .collect();
    println!(
        "loop order at n = {n}:      misses ~ M^{:.2}   (no reuse once 3n² > M)",
        fitted_exponent(&series_loop)
    );
}
