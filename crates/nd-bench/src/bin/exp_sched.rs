//! E10–E11 (Theorems 1 and 3): the space-bounded scheduler on the PMH.
//!
//! * E10 — per-level cache misses of the SB scheduler versus the `Q*(t; σ·M_j)`
//!   bound of Theorem 1.
//! * E11 — completion time of SB-ND, SB-NP and work stealing as the number of
//!   level-(h−1) subclusters (and hence processors) grows, against the
//!   perfectly-balanced bound of Eq. (22).  The ND model sustains near-perfect
//!   efficiency on more processors — Theorem 3's message.

use nd_algorithms::common::Mode;
use nd_algorithms::{cholesky, lcs, trs};
use nd_core::pcc::pcc;
use nd_pmh::config::PmhConfig;
use nd_pmh::machine::MachineTree;
use nd_sched::cost::MissModel;
use nd_sched::space_bounded::{simulate_space_bounded, SbConfig};
use nd_sched::stats::perfect_balance_time;
use nd_sched::work_stealing::simulate_work_stealing;

fn main() {
    let base = 8;
    let n = 256;
    let sb_cfg = SbConfig::default();

    type Builder = fn(usize, usize, Mode) -> nd_algorithms::BuiltAlgorithm;
    let algos: Vec<(&str, Builder)> = vec![
        ("trs", (|n, b, m| trs::build_trs(n, b, m)) as Builder),
        ("cholesky", |n, b, m| cholesky::build_cholesky(n, b, m)),
        ("lcs", |n, b, m| lcs::build_lcs(n, b, m)),
    ];

    // ---------------------------------------------------------------- E10 ----
    println!("E10 (Theorem 1): SB-scheduler misses vs the Q*(t; σ·M_j) bound  (n = {n}, σ = 1/3)");
    println!("{:-<95}", "");
    let config = PmhConfig::experiment_machine(2);
    let machine = MachineTree::build(&config);
    for (name, build) in &algos {
        let built = build(n, base, Mode::Nd);
        let stats = simulate_space_bounded(&built.tree, &built.dag, &machine, &sb_cfg);
        for (li, misses) in stats.misses_per_level.iter().enumerate() {
            let threshold = (sb_cfg.sigma * config.size(li + 1) as f64) as u64;
            let bound = pcc(&built.tree, built.tree.root(), threshold);
            println!(
                "  {:<10} level {}: misses {:>14.0}   Q* bound {:>14}   ratio {:>5.2}   {}",
                name,
                li + 1,
                misses,
                bound,
                misses / bound as f64,
                if *misses <= bound as f64 + 1e-6 {
                    "OK"
                } else {
                    "VIOLATION"
                }
            );
        }
    }

    // ---------------------------------------------------------------- E11 ----
    println!();
    println!("E11 (Theorem 3): completion time vs machine size  (n = {n}, base {base})");
    println!("{:-<110}", "");
    println!(
        "{:<10} {:>5} {:>6} | {:>14} {:>14} {:>14} {:>14} | {:>8} {:>8}",
        "algorithm", "sub", "p", "SB-ND", "SB-NP", "WS (pess.)", "perfect", "eff ND", "eff NP"
    );
    for (name, build) in &algos {
        let nd = build(n, base, Mode::Nd);
        let np = build(n, base, Mode::Np);
        for subclusters in [1usize, 2, 4, 8] {
            let config = PmhConfig::experiment_machine(subclusters);
            let machine = MachineTree::build(&config);
            let p = config.num_processors();
            let sb_nd = simulate_space_bounded(&nd.tree, &nd.dag, &machine, &sb_cfg);
            let sb_np = simulate_space_bounded(&np.tree, &np.dag, &machine, &sb_cfg);
            let ws = simulate_work_stealing(
                &nd.tree,
                &nd.dag,
                &config,
                p,
                sb_cfg.sigma,
                MissModel::PerStrand,
            );
            let costs: Vec<u64> = (1..=config.cache_levels())
                .map(|l| config.miss_cost(l))
                .collect();
            let work: f64 = sb_nd.busy_time
                - sb_nd
                    .misses_per_level
                    .iter()
                    .zip(&costs)
                    .map(|(m, &c)| m * c as f64)
                    .sum::<f64>();
            let perfect = perfect_balance_time(work, &sb_nd.misses_per_level, &costs, p);
            println!(
                "{:<10} {:>5} {:>6} | {:>14.0} {:>14.0} {:>14.0} {:>14.0} | {:>7.0}% {:>7.0}%",
                name,
                subclusters,
                p,
                sb_nd.completion_time,
                sb_np.completion_time,
                ws.completion_time,
                perfect,
                100.0 * perfect / sb_nd.completion_time,
                100.0 * perfect / sb_np.completion_time,
            );
        }
        println!("{:-<110}", "");
    }
    println!("eff = perfect-balance time / measured time (Theorem 3 predicts eff ND stays Θ(1)");
    println!("while the machine grows, for machines whose parallelism is below α_max).");
}
