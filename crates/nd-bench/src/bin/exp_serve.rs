//! E22: the serving layer under mixed-tenant load with injected chaos.
//!
//! Drives `nd-serve` the way a service would be driven: an `interactive`
//! tenant (high priority, small MM jobs), a `batch` tenant (low priority,
//! larger MM and Cholesky jobs), and a `poison` tenant whose graph key
//! faults deterministically for its first twelve attempts — all multiplexed
//! onto one shared pool while roughly one attempt in fifty panics inside the
//! executor's catch scope.
//!
//! Records, into the `serve` section of `BENCH_exec.json`:
//!
//! * acceptance/terminal accounting (the zero-loss invariant:
//!   `accepted == terminal`),
//! * per-tenant p50/p99 latency and overall throughput,
//! * retry volume and availability of the healthy tenants (the fraction of
//!   their accepted jobs that ended `Done` — the retry layer should hold
//!   this at ≥ 99% under 1-in-50 chaos),
//! * circuit-breaker trips, fast-rejected submissions while cooling, and
//!   whether the poisoned key recovered to `Closed` once its fault cleared,
//! * graceful-drain timing.

use nd_algorithms::exec::Layout;
use nd_runtime::{Priority, ThreadPool};
use nd_serve::{
    AlgoKind, BreakerConfig, InjectSpec, JobOutcome, JobSpec, JobTicket, RetryPolicy, ServeConfig,
    ServeError, Server, TenantConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One tenant's collected results.
#[derive(Default)]
struct TenantRun {
    accepted: u64,
    rejected: u64,
    done: u64,
    shed: u64,
    poisoned: u64,
    latencies_ns: Vec<u64>,
}

impl TenantRun {
    fn absorb(&mut self, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Done { latency_ns, .. } => {
                self.done += 1;
                self.latencies_ns.push(*latency_ns);
            }
            JobOutcome::Shed { .. } => self.shed += 1,
            JobOutcome::Poisoned { .. } => self.poisoned += 1,
        }
    }

    fn percentile_us(&self, p: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies_ns.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        v[idx] as f64 / 1e3
    }

    fn json(&self, name: &str) -> String {
        format!(
            "{{\"tenant\":\"{name}\",\"accepted\":{},\"rejected\":{},\"done\":{},\
\"shed\":{},\"poisoned\":{},\"p50_us\":{:.1},\"p99_us\":{:.1}}}",
            self.accepted,
            self.rejected,
            self.done,
            self.shed,
            self.poisoned,
            self.percentile_us(0.50),
            self.percentile_us(0.99)
        )
    }
}

/// Splices the `serve` section into `exp_exec`'s `BENCH_exec.json` (or a
/// fresh skeleton), replacing any previous run of this binary and leaving
/// every other section — including `exp_scaling`'s trailing `scaling` /
/// `simd` / `cpu` block — untouched.
fn splice_serve(serve: &str) {
    let base = std::fs::read_to_string("BENCH_exec.json")
        .unwrap_or_else(|_| String::from("{\n  \"experiment\": \"exp_exec\"\n}\n"));
    let (head, tail) = match base.find(",\n  \"serve\":") {
        Some(i) => {
            // Replace the existing serve section: it extends to the next
            // top-level section (two-space indent) or the closing brace.
            let next = base[i + 1..].find(",\n  \"").map(|j| i + 1 + j);
            match next {
                Some(j) => (base[..i].to_string(), base[j..].to_string()),
                None => (base[..i].to_string(), String::from("\n}\n")),
            }
        }
        None => match base.find(",\n  \"scaling\":") {
            // Keep serve ahead of exp_scaling's block: that binary rewrites
            // everything from its own marker to the end of the file.
            Some(i) => (base[..i].to_string(), base[i..].to_string()),
            None => {
                let t = base.trim_end();
                let t = t
                    .strip_suffix('}')
                    .expect("BENCH_exec.json is not a JSON object");
                (t.trim_end().to_string(), String::from("\n}\n"))
            }
        },
    };
    let file = format!("{head},\n  \"serve\": {serve}{tail}");
    std::fs::write("BENCH_exec.json", &file).expect("failed to write BENCH_exec.json");
}

fn main() {
    let jobs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            std::env::var("ND_POOL_WORKERS")
                .ok()
                .and_then(|s| s.trim().parse().ok())
        })
        .unwrap_or(4);
    const CHAOS_1_IN: u64 = 50;
    eprintln!("exp_serve: {jobs} interactive jobs, {workers} workers, chaos 1/{CHAOS_1_IN}");

    let pool = Arc::new(ThreadPool::new(workers));
    let server = Server::new(
        Arc::clone(&pool),
        ServeConfig {
            runners: 2,
            chaos_panic_1_in: Some(CHAOS_1_IN),
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(5),
            },
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(10),
            },
            quarantine_after: 6,
            seed: 0xE22,
            ..ServeConfig::default()
        },
    );
    server.register_tenant(
        "interactive",
        TenantConfig {
            priority: Priority::High,
            ..TenantConfig::default()
        },
    );
    server.register_tenant(
        "batch",
        TenantConfig {
            priority: Priority::Low,
            ..TenantConfig::default()
        },
    );
    server.register_tenant("poison", TenantConfig::default());

    let interactive_specs = [
        JobSpec::new(AlgoKind::Mm, 16, 8, Layout::RowMajor, 11),
        JobSpec::new(AlgoKind::Mm, 32, 8, Layout::Tiled, 12),
        JobSpec::new(AlgoKind::Cholesky, 16, 8, Layout::RowMajor, 13),
    ];
    let batch_specs = [
        JobSpec::new(AlgoKind::Mm, 64, 16, Layout::Tiled, 21),
        JobSpec::new(AlgoKind::Cholesky, 32, 16, Layout::RowMajor, 22),
    ];
    // The poisoned key: deterministically faults for its first 12 attempts,
    // then heals — enough to poison jobs, trip the breaker, and then prove
    // HalfOpen recovery.
    let mut poison_spec = JobSpec::new(AlgoKind::Mm, 16, 16, Layout::RowMajor, 66);
    poison_spec.inject = InjectSpec::FirstK(12);

    let mut runs: Vec<(&'static str, TenantRun)> = vec![
        ("interactive", TenantRun::default()),
        ("batch", TenantRun::default()),
        ("poison", TenantRun::default()),
    ];
    let mut tickets: Vec<(usize, JobTicket)> = Vec::new();
    let start = Instant::now();
    for i in 0..jobs {
        let spec = interactive_specs[(i % 3) as usize];
        match server.submit("interactive", spec) {
            Ok(t) => {
                runs[0].1.accepted += 1;
                tickets.push((0, t));
            }
            Err(_) => runs[0].1.rejected += 1,
        }
        if i % 2 == 0 {
            let spec = batch_specs[(i / 2 % 2) as usize];
            match server.submit("batch", spec) {
                Ok(t) => {
                    runs[1].1.accepted += 1;
                    tickets.push((1, t));
                }
                Err(_) => runs[1].1.rejected += 1,
            }
        }
        if i % 10 == 0 {
            // Pace the poison storm so the breaker's trip → cool → probe
            // cycle happens while traffic is still flowing.
            match server.submit("poison", poison_spec) {
                Ok(t) => {
                    runs[2].1.accepted += 1;
                    tickets.push((2, t));
                }
                Err(ServeError::BreakerOpen { .. }) => runs[2].1.rejected += 1,
                Err(_) => runs[2].1.rejected += 1,
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    for (tenant, ticket) in &tickets {
        runs[*tenant].1.absorb(&ticket.wait());
    }
    let elapsed = start.elapsed();

    // Recovery probe: once the injected faults are exhausted, the poisoned
    // key must come back through HalfOpen to Closed and serve `Done`.
    let recovery_deadline = Instant::now() + Duration::from_secs(10);
    let mut breaker_recovered = false;
    while Instant::now() < recovery_deadline {
        match server.submit("poison", poison_spec) {
            Ok(t) => match t.wait() {
                JobOutcome::Done { .. } => {
                    breaker_recovered = true;
                    break;
                }
                _ => continue,
            },
            Err(ServeError::BreakerOpen { .. }) => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("unexpected rejection during recovery: {e:?}"),
        }
    }

    let drain_start = Instant::now();
    let report = server.drain(Duration::from_secs(30));
    let drain_ms = drain_start.elapsed().as_secs_f64() * 1e3;
    let h = server.health();
    let poison_key = poison_spec.key();
    let poison_breaker_closed = h
        .breakers
        .iter()
        .find(|(k, _)| *k == poison_key)
        .map(|(_, s)| *s == nd_serve::BreakerState::Closed)
        .unwrap_or(false);

    let healthy_accepted = runs[0].1.accepted + runs[1].1.accepted;
    let healthy_done = runs[0].1.done + runs[1].1.done;
    let availability = if healthy_accepted > 0 {
        healthy_done as f64 / healthy_accepted as f64
    } else {
        1.0
    };
    let throughput = h.done as f64 / elapsed.as_secs_f64();

    eprintln!(
        "exp_serve: accepted {} terminal {} done {} shed {} poisoned {} | \
retries {} injected {} | breaker trips {} fast-rejects {} recovered {} | \
healthy availability {:.4} | {:.0} jobs/s | drain {:.1} ms (completed {})",
        h.accepted,
        h.terminal,
        h.done,
        h.shed,
        h.poisoned,
        h.retries,
        h.injected_faults,
        h.breaker_trips,
        h.breaker_fast_rejects,
        breaker_recovered,
        availability,
        throughput,
        drain_ms,
        report.completed
    );
    assert_eq!(h.accepted, h.terminal, "zero-loss invariant violated");

    let tenant_rows: Vec<String> = runs.iter().map(|(n, r)| r.json(n)).collect();
    let serve_section = format!(
        "{{\n    \"workers\": {workers},\n    \"chaos_panic_1_in\": {CHAOS_1_IN},\n    \
\"accepted\": {},\n    \"terminal\": {},\n    \"done\": {},\n    \"shed\": {},\n    \
\"poisoned\": {},\n    \"retries\": {},\n    \"attempts\": {},\n    \
\"injected_faults\": {},\n    \"breaker_trips\": {},\n    \
\"breaker_fast_rejects\": {},\n    \"breaker_recovered\": {},\n    \
\"availability_healthy\": {:.6},\n    \"throughput_jobs_per_s\": {:.1},\n    \
\"cache\": {{\"compiles\": {}, \"hits\": {}, \"quarantines\": {}}},\n    \
\"drain\": {{\"completed\": {}, \"shed\": {}, \"elapsed_ms\": {:.2}}},\n    \
\"tenants\": [\n      {}\n    ]\n  }}",
        h.accepted,
        h.terminal,
        h.done,
        h.shed,
        h.poisoned,
        h.retries,
        h.attempts,
        h.injected_faults,
        h.breaker_trips,
        h.breaker_fast_rejects,
        breaker_recovered && poison_breaker_closed,
        availability,
        throughput,
        h.cache.compiles,
        h.cache.hits,
        h.cache.quarantines,
        report.completed,
        report.shed,
        drain_ms,
        tenant_rows.join(",\n      ")
    );
    println!("{{\"experiment\":\"exp_serve\",\"section\":\"serve\",\"summary\":{serve_section}}}");
    splice_serve(&serve_section);
    eprintln!("exp_serve: spliced the serve section into BENCH_exec.json");
    server.shutdown(Duration::from_secs(5));
}
