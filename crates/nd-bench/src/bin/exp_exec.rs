//! E14: real wall-clock execution — flat work stealing versus the
//! hierarchy-aware space-bounded executor of `nd-exec`, on MM and Cholesky.
//!
//! Both executors run the *same* deterministic ND task graph; only the
//! scheduling differs: the flat baseline steals blindly in ring order (but its
//! pool carries the machine's distance matrix, so its cross-cluster steals are
//! *measured*, not assumed), while the `nd-exec` pool routes every strand to
//! the subcluster its `σ·M_i`-maximal task was anchored to and steals
//! nearest-cluster-first.  Each executor gets its own pool, constructed and
//! dropped around its own measurement so idle workers of one never perturb the
//! other's timings.  Results are checked bit-for-bit against each other before
//! timing, and one JSON object per (algorithm, executor) measurement is
//! emitted on stdout.
//!
//! Usage: `cargo run --release --bin exp_exec -- [n] [reps]` (default 256, 3).

use nd_algorithms::cholesky::cholesky_parallel;
use nd_algorithms::common::Mode;
use nd_algorithms::mm::multiply_parallel;
use nd_exec::execute::{cholesky_anchored, multiply_anchored};
use nd_exec::pool::flat_topology_with_distances;
use nd_exec::{AnchorConfig, HierarchicalPool, StealPolicy};
use nd_linalg::Matrix;
use nd_pmh::machine::MachineTree;
use nd_pmh::topology::detect_host;
use nd_runtime::ThreadPool;
use std::time::Instant;

struct Measurement {
    best_seconds: f64,
    mean_seconds: f64,
    cross_cluster_steals: u64,
    total_steals: u64,
}

fn print_json(algorithm: &str, executor: &str, layout: &str, workers: usize, m: &Measurement) {
    println!(
        "{{\"experiment\":\"exp_exec\",\"algorithm\":\"{}\",\"executor\":\"{}\",\
\"layout\":\"{}\",\"workers\":{},\"best_seconds\":{:.6},\"mean_seconds\":{:.6},\
\"cross_cluster_steals\":{},\"total_steals\":{}}}",
        algorithm,
        executor,
        layout,
        workers,
        m.best_seconds,
        m.mean_seconds,
        m.cross_cluster_steals,
        m.total_steals
    );
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let dt = start.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    (best, total / reps as f64)
}

/// Steals that crossed a level-1 cluster boundary (distance class ≥ 1).
fn cross_steals(by_distance: &[u64]) -> u64 {
    by_distance.iter().skip(1).sum()
}

/// Measures `work` on a freshly built flat (ring-stealing) pool, classifying
/// its steals by the machine's distance matrix.  The pool is dropped before
/// returning, so the next measurement starts with no idle workers around.
fn measure_flat(
    machine: &MachineTree,
    reps: usize,
    mut work: impl FnMut(&ThreadPool),
) -> Measurement {
    let pool = ThreadPool::with_topology(flat_topology_with_distances(machine));
    let before = pool.steals_by_distance();
    let (best_seconds, mean_seconds) = time_reps(reps, || work(&pool));
    let after = pool.steals_by_distance();
    let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    Measurement {
        best_seconds,
        mean_seconds,
        cross_cluster_steals: cross_steals(&delta),
        total_steals: delta.iter().sum(),
    }
}

/// Measures `work` on a freshly built anchored (nearest-cluster-first) pool.
fn measure_anchored(
    machine: &MachineTree,
    reps: usize,
    mut work: impl FnMut(&HierarchicalPool),
) -> Measurement {
    let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
    let before = pool.steals_by_distance();
    let (best_seconds, mean_seconds) = time_reps(reps, || work(&pool));
    let after = pool.steals_by_distance();
    let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    Measurement {
        best_seconds,
        mean_seconds,
        cross_cluster_steals: cross_steals(&delta),
        total_steals: delta.iter().sum(),
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let base = 32.min(n);
    let cfg = AnchorConfig::default();

    let host = detect_host();
    let machine = host.machine();
    let workers = machine.processor_count();
    let layout = format!(
        "{:?}:{}L/{}p",
        host.source,
        host.config.cache_levels(),
        workers
    );
    eprintln!("exp_exec: n = {n}, base = {base}, reps = {reps}, host layout {layout}");

    // ------------------------------------------------------------------ MM ----
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);

    // Correctness cross-check first, each executor on its own short-lived pool.
    let mut c_flat = Matrix::zeros(n, n);
    {
        let pool = ThreadPool::new(workers);
        multiply_parallel(&pool, &a, &b, &mut c_flat, Mode::Nd, base);
    }
    {
        let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
        let mut c_hier = Matrix::zeros(n, n);
        multiply_anchored(&pool, &a, &b, &mut c_hier, base, &cfg);
        assert_eq!(
            c_flat.max_abs_diff(&c_hier),
            0.0,
            "executors disagree on MM — scheduling must not change results"
        );
    }

    let m = measure_flat(&machine, reps, |pool| {
        let mut c = Matrix::zeros(n, n);
        multiply_parallel(pool, &a, &b, &mut c, Mode::Nd, base);
        std::hint::black_box(&c);
    });
    print_json("mm", "flat-ws", &layout, workers, &m);

    let m = measure_anchored(&machine, reps, |pool| {
        let mut c = Matrix::zeros(n, n);
        multiply_anchored(pool, &a, &b, &mut c, base, &cfg);
        std::hint::black_box(&c);
    });
    print_json("mm", "nd-exec", &layout, workers, &m);

    // ------------------------------------------------------------ Cholesky ----
    let spd = Matrix::random_spd(n, 3);

    let mut l_flat = spd.clone();
    {
        let pool = ThreadPool::new(workers);
        cholesky_parallel(&pool, &mut l_flat, Mode::Nd, base);
    }
    {
        let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
        let mut l_hier = spd.clone();
        cholesky_anchored(&pool, &mut l_hier, base, &cfg);
        assert_eq!(
            l_flat.max_abs_diff(&l_hier),
            0.0,
            "executors disagree on Cholesky — scheduling must not change results"
        );
    }

    let m = measure_flat(&machine, reps, |pool| {
        let mut l = spd.clone();
        cholesky_parallel(pool, &mut l, Mode::Nd, base);
        std::hint::black_box(&l);
    });
    print_json("cholesky", "flat-ws", &layout, workers, &m);

    let m = measure_anchored(&machine, reps, |pool| {
        let mut l = spd.clone();
        cholesky_anchored(pool, &mut l, base, &cfg);
        std::hint::black_box(&l);
    });
    print_json("cholesky", "nd-exec", &layout, workers, &m);
}
