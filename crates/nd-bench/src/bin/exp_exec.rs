//! E14: real wall-clock execution — flat work stealing versus the
//! hierarchy-aware space-bounded executor of `nd-exec`, on MM, Cholesky, LU
//! (partial pivoting) and 2-D Floyd–Warshall — plus E15: executor hot-path
//! microbenchmarks (per-task scheduling overhead, tasks/second, and
//! rebuild-vs-reuse of compiled graphs), E16: rebuild-vs-reuse of the
//! compiled LU and FW-2D drivers (the loop-blocked algorithms this repo
//! lowers through the same compiled path as the recursive ones), and E17: the
//! fire-rule frontend — DRS expansion + compile cost versus the access-set
//! oracle rebuilding the same dependency structure, plus the reuse speedup of
//! a DRS-built graph (MM and LCS), and E19: the `nd-trace` subsystem — the
//! runtime cost of toggling tracing on, and the derived scheduler metrics of
//! one traced anchored MM (written to the `trace` section of
//! `BENCH_exec.json`), and E20: the fault paths — drain-to-latch cancellation
//! latency after a strand panic, `reset()` + rerun recovery, the trip latency
//! of a blown wall-clock deadline, and the admission layer's shed accounting
//! under a synthetic burst (the `faults` section).
//!
//! Both executors run the *same* deterministic ND task graph; only the
//! scheduling differs: the flat baseline steals blindly in ring order (but its
//! pool carries the machine's distance matrix, so its cross-cluster steals are
//! *measured*, not assumed), while the `nd-exec` pool routes every strand to
//! the subcluster its `σ·M_i`-maximal task was anchored to and steals
//! nearest-cluster-first.  Each executor gets its own pool, constructed and
//! dropped around its own measurement so idle workers of one never perturb the
//! other's timings.  Results are checked bit-for-bit against each other before
//! timing, and one JSON object per (algorithm, executor) measurement is
//! emitted on stdout.
//!
//! The scheduler microbenchmarks run all-empty-task graphs through the
//! non-boxed [`TaskTable`] mode, so what they time is the executor itself —
//! counter claims, CSR successor walks, deque traffic, tail-execution — not
//! the kernels; and they compare rebuilding a compiled MM graph every
//! repetition against reusing one graph across repetitions.
//!
//! Everything is also written to `BENCH_exec.json` (one JSON object; the CI
//! bench-smoke step parses it and checks `tasks_per_sec` / `reuse_speedup`).
//!
//! Usage: `cargo run --release --bin exp_exec -- [n] [reps]` (default 256, 3).

use nd_algorithms::access::access_oracle_dag;
use nd_algorithms::cholesky::{build_cholesky, cholesky_parallel};
use nd_algorithms::common::{BuiltAlgorithm, Mode};
use nd_algorithms::driver::{self, bind_layout, ContextExtras};
use nd_algorithms::exec::{compile_algorithm, ExecContext, Layout};
use nd_algorithms::fw2d::{apsp_parallel, build_fw2d};
use nd_algorithms::lcs::build_lcs;
use nd_algorithms::lu::{build_lu, lu_parallel};
use nd_algorithms::mm::{build_mm, multiply_parallel};
use nd_exec::execute::{apsp_anchored, cholesky_anchored, lu_anchored, multiply_anchored};
use nd_exec::pool::flat_topology_with_distances;
use nd_exec::{AnchorConfig, HierarchicalPool, StealPolicy};
use nd_linalg::fw::random_digraph;
use nd_linalg::gemm::{gemm_block, gemm_block_packed, gemm_pack_len};
use nd_linalg::tile::TileMatrix;
use nd_linalg::Matrix;
use nd_pmh::machine::MachineTree;
use nd_pmh::topology::detect_host;
use nd_runtime::dataflow::{CompiledGraph, TaskTable};
use nd_runtime::pool::with_pack_scratch;
use nd_runtime::{
    AdmissionConfig, OverloadPolicy, Priority, RunBudget, RunError, SubmitOutcome, ThreadPool,
};
use nd_trace::{metrics_summary_json, TraceConfig, TraceSession};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Measurement {
    best_seconds: f64,
    mean_seconds: f64,
    cross_cluster_steals: u64,
    total_steals: u64,
}

fn measurement_json(
    algorithm: &str,
    executor: &str,
    layout: &str,
    workers: usize,
    m: &Measurement,
) -> String {
    format!(
        "{{\"experiment\":\"exp_exec\",\"algorithm\":\"{}\",\"executor\":\"{}\",\
\"layout\":\"{}\",\"workers\":{},\"best_seconds\":{:.6},\"mean_seconds\":{:.6},\
\"cross_cluster_steals\":{},\"total_steals\":{}}}",
        algorithm,
        executor,
        layout,
        workers,
        m.best_seconds,
        m.mean_seconds,
        m.cross_cluster_steals,
        m.total_steals
    )
}

/// An all-empty-task table: executing a graph through it times the scheduler
/// alone (claim, CSR walk, deque traffic, tail-execution), not the kernels.
struct NopTable;

impl TaskTable for NopTable {
    #[inline]
    fn run_task(&self, _task: u32) {}
}

/// Scheduler hot-path numbers: per-task overhead, throughput, reuse speedup.
struct SchedulerBench {
    graph_tasks: usize,
    graph_edges: usize,
    /// Best per-task scheduling overhead on a wide layered graph (ns).
    per_task_ns: f64,
    /// Best empty-task throughput on the same graph (tasks per second).
    tasks_per_sec: f64,
    /// Best per-task overhead on a pure serial chain (all tail-execution, ns).
    chain_task_ns: f64,
    /// Mean seconds to build + compile + execute the MM graph (the old
    /// every-call cost).
    rebuild_seconds: f64,
    /// Mean seconds to re-execute the already-compiled MM graph.
    reuse_seconds: f64,
    /// `rebuild_seconds / reuse_seconds`.
    reuse_speedup: f64,
}

impl SchedulerBench {
    fn json(&self) -> String {
        format!(
            "{{\"graph_tasks\":{},\"graph_edges\":{},\"per_task_ns\":{:.1},\
\"tasks_per_sec\":{:.0},\"chain_task_ns\":{:.1},\"rebuild_seconds\":{:.6},\
\"reuse_seconds\":{:.6},\"reuse_speedup\":{:.2}}}",
            self.graph_tasks,
            self.graph_edges,
            self.per_task_ns,
            self.tasks_per_sec,
            self.chain_task_ns,
            self.rebuild_seconds,
            self.reuse_seconds,
            self.reuse_speedup
        )
    }
}

/// Measures the executor hot path with empty tasks and the rebuild-vs-reuse
/// cost of a compiled MM graph of size `n`.
fn bench_scheduler(workers: usize, n: usize, base: usize, reps: usize) -> SchedulerBench {
    let pool = ThreadPool::new(workers);
    let table = Arc::new(NopTable);

    // A wide layered DAG: `layers × width` empty tasks, two predecessors each
    // (same column and a neighbour of the previous layer) — plenty of
    // parallelism and dependency traffic, zero task work.
    let (layers, width) = (64u32, 256u32);
    let mut edges = Vec::new();
    for l in 1..layers {
        for w in 0..width {
            let task = l * width + w;
            edges.push(((l - 1) * width + w, task));
            edges.push(((l - 1) * width + (w + 1) % width, task));
        }
    }
    let tasks = (layers * width) as usize;
    let graph = Arc::new(CompiledGraph::from_edges(tasks, &edges, Vec::new()));
    let (best, _) = time_reps(reps.max(3), || {
        graph.execute(&pool, &table).expect("timed run");
    });
    let per_task_ns = best * 1e9 / tasks as f64;
    let tasks_per_sec = tasks as f64 / best;

    // A pure serial chain: every step takes the inline tail-execution path.
    let chain_len = 50_000usize;
    let chain_edges: Vec<(u32, u32)> = (1..chain_len as u32).map(|t| (t - 1, t)).collect();
    let chain = Arc::new(CompiledGraph::from_edges(
        chain_len,
        &chain_edges,
        Vec::new(),
    ));
    let (chain_best, _) = time_reps(reps.max(3), || {
        chain.execute(&pool, &table).expect("timed run");
    });
    let chain_task_ns = chain_best * 1e9 / chain_len as f64;

    // Rebuild-vs-reuse on the real MM graph: the old path paid DRS + graph
    // construction on every execution; the compiled path pays it once.  A
    // fine base case puts the graph in the paper's fine-grained-strand
    // regime, where construction is a significant share of every run.
    let fine_base = base.min(8);
    let a = Matrix::random(n, n, 11);
    let b = Matrix::random(n, n, 12);
    let mut c = Matrix::zeros(n, n);
    let mut am = a.clone();
    let mut bm = b.clone();
    let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
    let (_, rebuild_seconds) = time_reps(reps, || {
        let built = build_mm(n, fine_base, Mode::Nd, 1.0);
        let compiled = compile_algorithm(&built.dag, &built.ops, &ctx);
        compiled.execute(&pool).expect("timed run");
    });
    let built = build_mm(n, fine_base, Mode::Nd, 1.0);
    let compiled = compile_algorithm(&built.dag, &built.ops, &ctx);
    let (_, reuse_seconds) = time_reps(reps, || {
        compiled.execute(&pool).expect("timed run");
    });

    SchedulerBench {
        graph_tasks: tasks,
        graph_edges: edges.len(),
        per_task_ns,
        tasks_per_sec,
        chain_task_ns,
        rebuild_seconds,
        reuse_seconds,
        reuse_speedup: rebuild_seconds / reuse_seconds,
    }
}

/// E19: cost and content of the `nd-trace` subsystem.  `disabled_per_task_ns`
/// and `enabled_per_task_ns` time the same wide layered empty-task DAG with
/// the pool's tracer off and on (the off/on ratio is the *runtime* toggle
/// cost; the compile-time cost of carrying the feature at all is measured by
/// `nd-runtime`'s `sched_overhead` binary built with and without the
/// feature).  The `traced_mm` sub-object is the compact metrics summary of
/// one traced anchored MM run, and `pool` carries the [`nd_runtime::PoolStats`]
/// deltas of that run.
struct TraceBench {
    disabled_per_task_ns: f64,
    enabled_per_task_ns: f64,
    /// `enabled / disabled` (1.0 = tracing costs nothing when on).
    enabled_overhead_ratio: f64,
    /// Events collected while timing the enabled runs (sanity: > 0).
    events_collected: usize,
    /// Events lost to ring wraparound during those runs.
    events_dropped: u64,
    /// Jobs executed / steals during the traced MM run (Pool::stats deltas).
    mm_jobs_executed: u64,
    mm_steals: u64,
    /// `metrics_summary_json` of the traced anchored MM run.
    traced_mm: String,
}

impl TraceBench {
    fn json(&self) -> String {
        format!(
            "{{\"disabled_per_task_ns\":{:.1},\"enabled_per_task_ns\":{:.1},\
\"enabled_overhead_ratio\":{:.3},\"events_collected\":{},\"events_dropped\":{},\
\"mm_jobs_executed\":{},\"mm_steals\":{},\"traced_mm\":{}}}",
            self.disabled_per_task_ns,
            self.enabled_per_task_ns,
            self.enabled_overhead_ratio,
            self.events_collected,
            self.events_dropped,
            self.mm_jobs_executed,
            self.mm_steals,
            self.traced_mm
        )
    }
}

/// Measures the tracing subsystem: runtime-toggle overhead on the empty-task
/// DAG, then one traced anchored MM whose derived metrics land in the
/// `trace` section of `BENCH_exec.json`.
fn bench_trace(
    machine: &MachineTree,
    workers: usize,
    n: usize,
    base: usize,
    reps: usize,
) -> TraceBench {
    let pool = ThreadPool::new(workers);
    let table = Arc::new(NopTable);
    let (layers, width) = (64u32, 256u32);
    let mut edges = Vec::new();
    for l in 1..layers {
        for w in 0..width {
            let task = l * width + w;
            edges.push(((l - 1) * width + w, task));
            edges.push(((l - 1) * width + (w + 1) % width, task));
        }
    }
    let tasks = (layers * width) as usize;
    let graph = Arc::new(CompiledGraph::from_edges(tasks, &edges, Vec::new()));
    graph.execute(&pool, &table).expect("warm-up run"); // warm up
    let (disabled_best, _) = time_reps(reps.max(3), || {
        graph.execute(&pool, &table).expect("timed run");
    });
    let session = TraceSession::start(pool.tracer(), TraceConfig::from_env());
    let (enabled_best, _) = time_reps(reps.max(3), || {
        graph.execute(&pool, &table).expect("timed run");
    });
    let trace = session.finish();
    let disabled_per_task_ns = disabled_best * 1e9 / tasks as f64;
    let enabled_per_task_ns = enabled_best * 1e9 / tasks as f64;

    // One traced anchored MM (the acceptance scenario of the trace tests);
    // the pool stats around it exercise the snapshot API.
    let hier = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
    let a = Matrix::random(n, n, 21);
    let b = Matrix::random(n, n, 22);
    let mut c = Matrix::zeros(n, n);
    let mut am = a.clone();
    let mut bm = b.clone();
    let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
    let built = build_mm(n, base, Mode::Nd, 1.0);
    let before = hier.pool().stats();
    let (_, mm_trace) =
        nd_exec::execute::run_anchored_traced(&hier, &built, &ctx, &AnchorConfig::default());
    let delta = hier.pool().stats().since(&before);

    TraceBench {
        disabled_per_task_ns,
        enabled_per_task_ns,
        enabled_overhead_ratio: enabled_per_task_ns / disabled_per_task_ns,
        events_collected: trace.events.len(),
        events_dropped: trace.dropped,
        mm_jobs_executed: delta.jobs_executed,
        mm_steals: delta.steals,
        traced_mm: metrics_summary_json(&mm_trace),
    }
}

/// Rebuild-vs-reuse of one compiled algorithm driver (E16): the old path paid
/// build + compile on every execution; the compiled path pays it once.
struct ReuseBench {
    algorithm: &'static str,
    rebuild_seconds: f64,
    reuse_seconds: f64,
    reuse_speedup: f64,
}

impl ReuseBench {
    fn json(&self) -> String {
        format!(
            "{{\"algorithm\":\"{}\",\"rebuild_seconds\":{:.6},\"reuse_seconds\":{:.6},\
\"reuse_speedup\":{:.2}}}",
            self.algorithm, self.rebuild_seconds, self.reuse_seconds, self.reuse_speedup
        )
    }
}

/// Measures rebuild-every-run versus build-once/execute-many for one
/// algorithm through the shared driver layer.  `reinit` restores the bound
/// buffers in place before every execution (charged to both sides equally).
fn bench_algorithm_reuse(
    pool: &ThreadPool,
    reps: usize,
    algorithm: &'static str,
    build: impl Fn() -> BuiltAlgorithm,
    ctx: &ExecContext,
    mut reinit: impl FnMut(),
) -> ReuseBench {
    let (_, rebuild_seconds) = time_reps(reps, || {
        reinit();
        let built = build();
        driver::compile(&built, ctx)
            .execute(pool)
            .expect("timed run");
    });
    let built = build();
    let compiled = driver::compile(&built, ctx);
    let (_, reuse_seconds) = time_reps(reps, || {
        reinit();
        compiled.execute(pool).expect("timed run");
    });
    ReuseBench {
        algorithm,
        rebuild_seconds,
        reuse_seconds,
        reuse_speedup: rebuild_seconds / reuse_seconds,
    }
}

/// The fire-rule frontend (E17): DRS expansion cost versus the access-oracle
/// rebuild of the same dependency structure, compile cost, and the reuse
/// speedup of the DRS-built graph.
struct FrontendBench {
    algorithm: &'static str,
    /// Mean seconds to unfold + validate + DRS-rewrite the ND program.
    drs_build_seconds: f64,
    /// Mean seconds the access-set oracle takes to rebuild the same
    /// dependency structure from the recorded block operations.
    access_build_seconds: f64,
    /// Mean seconds to lower the built algorithm to its compiled form.
    compile_seconds: f64,
    /// Mean seconds of build + compile + execute on every run (the old path).
    rebuild_seconds: f64,
    /// Mean seconds to re-execute the already-compiled graph.
    reuse_seconds: f64,
    /// `rebuild_seconds / reuse_seconds`.
    reuse_speedup: f64,
}

impl FrontendBench {
    fn json(&self) -> String {
        format!(
            "{{\"algorithm\":\"{}\",\"drs_build_seconds\":{:.6},\
\"access_build_seconds\":{:.6},\"compile_seconds\":{:.6},\
\"rebuild_seconds\":{:.6},\"reuse_seconds\":{:.6},\"reuse_speedup\":{:.2}}}",
            self.algorithm,
            self.drs_build_seconds,
            self.access_build_seconds,
            self.compile_seconds,
            self.rebuild_seconds,
            self.reuse_seconds,
            self.reuse_speedup
        )
    }
}

/// Measures one algorithm's fire-rule frontend: program build (unfold + DRS),
/// the access-oracle rebuild of the same structure, compile cost, and
/// rebuild-vs-reuse through the shared driver layer.
fn bench_frontend(
    pool: &ThreadPool,
    reps: usize,
    algorithm: &'static str,
    build: impl Fn() -> BuiltAlgorithm,
    ctx: &ExecContext,
    reinit: impl FnMut(),
) -> FrontendBench {
    let (_, drs_build_seconds) = time_reps(reps, || {
        std::hint::black_box(&build());
    });
    let built = build();
    let (_, access_build_seconds) = time_reps(reps, || {
        std::hint::black_box(&access_oracle_dag(&built));
    });
    let (_, compile_seconds) = time_reps(reps, || {
        std::hint::black_box(&driver::compile(&built, ctx));
    });
    let reuse = bench_algorithm_reuse(pool, reps, algorithm, &build, ctx, reinit);
    FrontendBench {
        algorithm,
        drs_build_seconds,
        access_build_seconds,
        compile_seconds,
        rebuild_seconds: reuse.rebuild_seconds,
        reuse_seconds: reuse.reuse_seconds,
        reuse_speedup: reuse.reuse_speedup,
    }
}

/// E18: the GEMM base case on both storage layouts.  A full blocked multiply
/// sweep over `sweep_n × sweep_n` matrices at base-case granularity `b` — the
/// access pattern an executed algorithm's strands actually produce — measured
/// three ways: strided row-major block views (the pre-tile-packed status
/// quo), row-major with per-worker panel packing, and contiguous tile-packed
/// slabs.
struct GemmLayoutBench {
    b: usize,
    /// Size of the in-cache sweep matrices (`16·b`; the whole working set
    /// exceeds L2 but stays in the outer cache).
    warm_sweep_n: usize,
    warm_rowmajor_gflops: f64,
    warm_rowmajor_packed_gflops: f64,
    warm_tiled_gflops: f64,
    warm_tiled_speedup: f64,
    /// Size of the cold-operand matrices (memory-resident; every sampled tile
    /// triple is cold — the regime the paper's `Q*(t; σ·M_j)` bounds target).
    cold_n: usize,
    cold_samples: usize,
    /// Headline numbers: the cold regime, where layout dominates.
    rowmajor_gflops: f64,
    tiled_gflops: f64,
    /// `rowmajor_seconds / tiled_seconds` in the cold regime.
    tiled_speedup: f64,
}

impl GemmLayoutBench {
    fn json(&self) -> String {
        format!(
            "{{\"b\":{},\"warm_sweep_n\":{},\"warm_rowmajor_gflops\":{:.2},\
\"warm_rowmajor_packed_gflops\":{:.2},\"warm_tiled_gflops\":{:.2},\
\"warm_tiled_speedup\":{:.3},\"cold_n\":{},\"cold_samples\":{},\
\"rowmajor_gflops\":{:.2},\"tiled_gflops\":{:.2},\"tiled_speedup\":{:.3}}}",
            self.b,
            self.warm_sweep_n,
            self.warm_rowmajor_gflops,
            self.warm_rowmajor_packed_gflops,
            self.warm_tiled_gflops,
            self.warm_tiled_speedup,
            self.cold_n,
            self.cold_samples,
            self.rowmajor_gflops,
            self.tiled_gflops,
            self.tiled_speedup
        )
    }
}

/// Measures one base-case size on both layouts.
///
/// Two regimes, identical kernel and op order on each side:
///
/// * **warm** — a full blocked-multiply sweep over `16b × 16b` matrices
///   (working set larger than L2, tiles revisited): the in-cache regime the
///   repo's default experiment sizes run in.
/// * **cold** — pseudo-randomly sampled tile triples over memory-resident
///   matrices, so every operand tile is cold: a strided row-major tile pays
///   `b` separate page-and-line streams where the packed tile is one
///   sequential slab.  Row-major and tiled reps are interleaved so ambient
///   noise on a shared host hits both sides equally.
fn bench_gemm_layout(b: usize, n: usize, reps: usize) -> GemmLayoutBench {
    let reps = reps.max(3);
    let warm_sweep_n = 16 * b;
    let g = warm_sweep_n / b;
    let a = Matrix::random(warm_sweep_n, warm_sweep_n, 91);
    let bm = Matrix::random(warm_sweep_n, warm_sweep_n, 92);
    let warm_flops = 2.0 * (warm_sweep_n as f64).powi(3);

    let mut am = a.clone();
    let mut bmm = bm.clone();
    let mut c = Matrix::zeros(warm_sweep_n, warm_sweep_n);
    let mut at = TileMatrix::pack(&a, b);
    let mut bt = TileMatrix::pack(&bm, b);
    let mut ct = TileMatrix::zeros(warm_sweep_n, warm_sweep_n, b);
    let (mut row_best, mut packed_best, mut tiled_best) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        {
            let (cv, av, bv) = (c.as_ptr_view(), am.as_ptr_view(), bmm.as_ptr_view());
            for bi in 0..g {
                for bj in 0..g {
                    for bk in 0..g {
                        // SAFETY: single-threaded sweep on disjoint C tiles.
                        unsafe {
                            gemm_block(
                                cv.block(bi * b, bj * b, b, b),
                                av.block(bi * b, bk * b, b, b),
                                bv.block(bk * b, bj * b, b, b),
                                1.0,
                            );
                        }
                    }
                }
            }
        }
        row_best = row_best.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        {
            let (cv, av, bv) = (c.as_ptr_view(), am.as_ptr_view(), bmm.as_ptr_view());
            with_pack_scratch(gemm_pack_len(b, b, b), |scratch| {
                for bi in 0..g {
                    for bj in 0..g {
                        for bk in 0..g {
                            // SAFETY: as above; scratch is this thread's arena.
                            unsafe {
                                gemm_block_packed(
                                    cv.block(bi * b, bj * b, b, b),
                                    av.block(bi * b, bk * b, b, b),
                                    bv.block(bk * b, bj * b, b, b),
                                    1.0,
                                    scratch,
                                );
                            }
                        }
                    }
                }
            });
        }
        packed_best = packed_best.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for bi in 0..g {
            for bj in 0..g {
                for bk in 0..g {
                    // SAFETY: single-threaded sweep on disjoint tile slabs.
                    unsafe {
                        gemm_block(
                            ct.tile_ptr(bi, bj).as_mat_ptr(),
                            at.tile_ptr(bi, bk).as_mat_ptr(),
                            bt.tile_ptr(bk, bj).as_mat_ptr(),
                            1.0,
                        );
                    }
                }
            }
        }
        tiled_best = tiled_best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box((&c, &ct));
    drop((am, bmm, c, at, bt, ct));

    // Cold regime: big matrices (small ones on CI smoke sizes — same
    // plumbing, truncated magnitudes), sampled tile triples.
    let (cold_n, cold_samples) = if n >= 256 { (8192, 8192) } else { (2048, 2048) };
    let cg = cold_n / b;
    // Hash each sample index into a tile triple.  The three components must
    // come from *different* bit ranges of the mix: deriving them all as
    // linear functions of `s % cg` would give the sequence period `cg`,
    // collapsing the sampled footprint to a few MB that an outer cache keeps
    // resident after the first rep — silently turning the cold regime warm.
    let visit = |s: usize| {
        let h = (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (
            (h >> 16) as usize % cg,
            (h >> 32) as usize % cg,
            (h >> 48) as usize % cg,
        )
    };
    let cold_flops = (cold_samples as f64) * 2.0 * (b as f64).powi(3);
    // Pack the tiled operands first and then *move* (not clone) the row-major
    // sources into the strided side, so peak residency is the six matrices
    // the measurement needs and nothing more.
    let a = Matrix::random(cold_n, cold_n, 93);
    let bm = Matrix::random(cold_n, cold_n, 94);
    let mut at = TileMatrix::pack(&a, b);
    let mut bt = TileMatrix::pack(&bm, b);
    let mut ct = TileMatrix::zeros(cold_n, cold_n, b);
    let mut am = a;
    let mut bmm = bm;
    let mut c = Matrix::zeros(cold_n, cold_n);
    let (mut cold_row_best, mut cold_tiled_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        {
            let (cv, av, bv) = (c.as_ptr_view(), am.as_ptr_view(), bmm.as_ptr_view());
            for s in 0..cold_samples {
                let (bi, bj, bk) = visit(s);
                // SAFETY: single-threaded sweep.
                unsafe {
                    gemm_block(
                        cv.block(bi * b, bj * b, b, b),
                        av.block(bi * b, bk * b, b, b),
                        bv.block(bk * b, bj * b, b, b),
                        1.0,
                    );
                }
            }
        }
        cold_row_best = cold_row_best.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for s in 0..cold_samples {
            let (bi, bj, bk) = visit(s);
            // SAFETY: single-threaded sweep.
            unsafe {
                gemm_block(
                    ct.tile_ptr(bi, bj).as_mat_ptr(),
                    at.tile_ptr(bi, bk).as_mat_ptr(),
                    bt.tile_ptr(bk, bj).as_mat_ptr(),
                    1.0,
                );
            }
        }
        cold_tiled_best = cold_tiled_best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box((&c, &ct));

    GemmLayoutBench {
        b,
        warm_sweep_n,
        warm_rowmajor_gflops: warm_flops / row_best / 1e9,
        warm_rowmajor_packed_gflops: warm_flops / packed_best / 1e9,
        warm_tiled_gflops: warm_flops / tiled_best / 1e9,
        warm_tiled_speedup: row_best / tiled_best,
        cold_n,
        cold_samples,
        rowmajor_gflops: cold_flops / cold_row_best / 1e9,
        tiled_gflops: cold_flops / cold_tiled_best / 1e9,
        tiled_speedup: cold_row_best / cold_tiled_best,
    }
}

/// E18: whole-algorithm wall clock on both layouts (compiled once per layout,
/// re-executed per rep with in-place re-initialisation — the kernel layer and
/// the scheduler, not build cost, are what differs).
struct AlgLayoutBench {
    algorithm: &'static str,
    rowmajor_seconds: f64,
    tiled_seconds: f64,
    tiled_speedup: f64,
}

impl AlgLayoutBench {
    fn json(&self) -> String {
        format!(
            "{{\"algorithm\":\"{}\",\"rowmajor_seconds\":{:.6},\"tiled_seconds\":{:.6},\
\"tiled_speedup\":{:.3}}}",
            self.algorithm, self.rowmajor_seconds, self.tiled_seconds, self.tiled_speedup
        )
    }
}

/// Measures one algorithm on one layout: bind → compile once → (reinit,
/// execute) × reps, timing only the executions, best-of-reps.
fn bench_alg_on_layout(
    pool: &ThreadPool,
    built: &BuiltAlgorithm,
    pristine: &[Matrix],
    base: usize,
    layout: Layout,
    extras: ContextExtras,
    reps: usize,
) -> f64 {
    let mut mats: Vec<Matrix> = pristine.to_vec();
    let mut refs: Vec<&mut Matrix> = mats.iter_mut().collect();
    let (mut tiles, ctx) = bind_layout(&mut refs, base, layout, extras);
    let compiled = driver::compile(built, &ctx);
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(2) {
        match layout {
            Layout::RowMajor => {
                for (m, p) in mats.iter_mut().zip(pristine) {
                    m.as_mut_slice().copy_from_slice(p.as_slice());
                }
            }
            Layout::Tiled => {
                for (t, p) in tiles.iter_mut().zip(pristine) {
                    t.pack_from(p);
                }
            }
        }
        let start = Instant::now();
        compiled.execute(pool).expect("timed run");
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let dt = start.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    (best, total / reps as f64)
}

/// Steals that crossed a level-1 cluster boundary (distance class ≥ 1).
fn cross_steals(by_distance: &[u64]) -> u64 {
    by_distance.iter().skip(1).sum()
}

/// Measures `work` on a freshly built flat (ring-stealing) pool, classifying
/// its steals by the machine's distance matrix.  The pool is dropped before
/// returning, so the next measurement starts with no idle workers around.
fn measure_flat(
    machine: &MachineTree,
    reps: usize,
    mut work: impl FnMut(&ThreadPool),
) -> Measurement {
    let pool = ThreadPool::with_topology(flat_topology_with_distances(machine));
    let before = pool.steals_by_distance();
    let (best_seconds, mean_seconds) = time_reps(reps, || work(&pool));
    let after = pool.steals_by_distance();
    let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    Measurement {
        best_seconds,
        mean_seconds,
        cross_cluster_steals: cross_steals(&delta),
        total_steals: delta.iter().sum(),
    }
}

/// Measures `work` on a freshly built anchored (nearest-cluster-first) pool.
fn measure_anchored(
    machine: &MachineTree,
    reps: usize,
    mut work: impl FnMut(&HierarchicalPool),
) -> Measurement {
    let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
    let before = pool.steals_by_distance();
    let (best_seconds, mean_seconds) = time_reps(reps, || work(&pool));
    let after = pool.steals_by_distance();
    let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    Measurement {
        best_seconds,
        mean_seconds,
        cross_cluster_steals: cross_steals(&delta),
        total_steals: delta.iter().sum(),
    }
}

/// A strand table that panics at one task while armed and does nothing
/// otherwise — the natural-panic probe for the fault-path measurements (no
/// `chaos` feature involved: the recovery machinery is always on).
struct FaultProbeTable {
    boom: u32,
    armed: AtomicBool,
}

impl TaskTable for FaultProbeTable {
    fn run_task(&self, task: u32) {
        if task == self.boom && self.armed.load(Ordering::Relaxed) {
            panic!("bench: injected fault at strand {task}");
        }
    }
}

/// E20: the robustness layer's costs.  A mid-run strand panic cancels the run
/// by *draining* to the completion latch — every remaining strand is claimed
/// but skipped — so a faulted run should return no slower than a clean one
/// (`drain_ratio` ≈ 1.0 or below is the claim; the fault path never adds a
/// second traversal).  `recovery_seconds` is the documented recovery
/// (`reset()` + rerun) back to a complete result, `deadline_trip_seconds` is
/// how long a run whose wall-clock budget is already blown takes to notice at
/// a claim boundary and drain out, and the `shed_*` numbers check the
/// admission layer's exact accounting under a burst far above its high-water
/// mark.  All of it runs without the `chaos` feature: the panic here is a
/// natural one, so this section also proves the fault path needs no harness.
struct FaultBench {
    graph_tasks: usize,
    /// Best clean execution of the probe graph (all fault machinery armed but
    /// unused — this is the happy-path cost of the fallible executor).
    clean_seconds: f64,
    /// Best faulted execution: strand panic at mid-graph, drain, `Err` return.
    drain_seconds: f64,
    /// `drain_seconds / clean_seconds`.
    drain_ratio: f64,
    /// Best `reset()` + clean rerun after a faulted run.
    recovery_seconds: f64,
    /// Best time for a run with an already-blown deadline to drain out.
    deadline_trip_seconds: f64,
    /// Burst size thrown at the shedding admission layer.
    shed_burst: usize,
    shed_admitted: u64,
    shed_refused: u64,
}

impl FaultBench {
    fn json(&self) -> String {
        format!(
            "{{\"graph_tasks\":{},\"clean_seconds\":{:.6},\"drain_seconds\":{:.6},\
\"drain_ratio\":{:.3},\"recovery_seconds\":{:.6},\"deadline_trip_seconds\":{:.6},\
\"shed_burst\":{},\"shed_admitted\":{},\"shed_refused\":{}}}",
            self.graph_tasks,
            self.clean_seconds,
            self.drain_seconds,
            self.drain_ratio,
            self.recovery_seconds,
            self.deadline_trip_seconds,
            self.shed_burst,
            self.shed_admitted,
            self.shed_refused
        )
    }
}

/// Measures the fault paths on the same wide layered empty-task DAG the
/// scheduler microbenchmarks use, with the bomb planted mid-graph.
fn bench_faults(workers: usize, reps: usize) -> FaultBench {
    let pool = ThreadPool::new(workers);
    let (layers, width) = (32u32, 128u32);
    let mut edges = Vec::new();
    for l in 1..layers {
        for w in 0..width {
            let task = l * width + w;
            edges.push(((l - 1) * width + w, task));
            edges.push(((l - 1) * width + (w + 1) % width, task));
        }
    }
    let tasks = (layers * width) as usize;
    let boom = (layers / 2) * width; // first strand of the middle layer
    let graph = Arc::new(CompiledGraph::from_edges(tasks, &edges, Vec::new()));
    let table = Arc::new(FaultProbeTable {
        boom,
        armed: AtomicBool::new(false),
    });
    let reps = reps.max(3);

    // Happy path through the fallible executor.
    let (clean_seconds, _) = time_reps(reps, || {
        graph.execute(&pool, &table).expect("clean run");
    });

    // The injected panics below would each print a backtrace through the
    // default hook — silence it so drain_seconds times the drain, not stderr.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Drain latency: arm, fault, Err — reset between reps (documented
    // recovery; the drain already restores the counters, reset() is the
    // belt-and-suspenders the API prescribes).
    table.armed.store(true, Ordering::Relaxed);
    let (drain_seconds, _) = time_reps(reps, || {
        graph
            .execute(&pool, &table)
            .expect_err("armed probe must fault");
        graph.reset();
    });

    // Recovery: fault the graph, then time only reset + disarmed rerun.
    let mut recovery_best = f64::INFINITY;
    for _ in 0..reps {
        table.armed.store(true, Ordering::Relaxed);
        graph
            .execute(&pool, &table)
            .expect_err("armed probe must fault");
        table.armed.store(false, Ordering::Relaxed);
        let start = Instant::now();
        graph.reset();
        graph.execute(&pool, &table).expect("recovery run");
        recovery_best = recovery_best.min(start.elapsed().as_secs_f64());
    }
    std::panic::set_hook(prev_hook);

    // Deadline trip: the budget is blown before the first claim; the run must
    // notice at a claim boundary and drain straight out.
    table.armed.store(false, Ordering::Relaxed);
    let budget = RunBudget::with_deadline(Duration::from_nanos(1));
    let mut deadline_best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let err = graph
            .execute_with(&pool, &table, &budget)
            .expect_err("blown budget must trip");
        assert!(
            matches!(err, RunError::DeadlineExceeded { .. }),
            "expected DeadlineExceeded, got {err:?}"
        );
        deadline_best = deadline_best.min(start.elapsed().as_secs_f64());
        graph.reset();
    }

    // Shedding: a gated burst against a small high-water mark; counts must be
    // exact and every admitted job must run.
    let shed_burst = 256usize;
    let high_water = 4usize;
    let shed_pool = ThreadPool::with_admission(
        workers,
        AdmissionConfig::new(high_water, OverloadPolicy::Shed),
    );
    let gate = Arc::new(AtomicBool::new(false));
    let ran = Arc::new(AtomicU64::new(0));
    let mut admitted = 0u64;
    for _ in 0..shed_burst {
        let gate = Arc::clone(&gate);
        let ran = Arc::clone(&ran);
        let outcome = shed_pool.submit(
            Priority::High,
            Box::new(move |_| {
                while !gate.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
                ran.fetch_add(1, Ordering::Relaxed);
            }),
        );
        if matches!(outcome, SubmitOutcome::Admitted) {
            admitted += 1;
        }
    }
    gate.store(true, Ordering::Relaxed);
    while ran.load(Ordering::Relaxed) < admitted {
        std::thread::yield_now();
    }
    let shed_refused = shed_pool.jobs_shed();
    assert_eq!(
        admitted + shed_refused,
        shed_burst as u64,
        "shed accounting"
    );

    FaultBench {
        graph_tasks: tasks,
        clean_seconds,
        drain_seconds,
        drain_ratio: drain_seconds / clean_seconds,
        recovery_seconds: recovery_best,
        deadline_trip_seconds: deadline_best,
        shed_burst,
        shed_admitted: admitted,
        shed_refused,
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let base = 32.min(n);
    let cfg = AnchorConfig::default();

    let host = detect_host();
    let machine = host.machine();
    let workers = machine.processor_count();
    let layout = format!(
        "{:?}:{}L/{}p",
        host.source,
        host.config.cache_levels(),
        workers
    );
    eprintln!("exp_exec: n = {n}, base = {base}, reps = {reps}, host layout {layout}");

    // ------------------------------------------------------------------ MM ----
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);

    // Correctness cross-check first, each executor on its own short-lived pool.
    let mut c_flat = Matrix::zeros(n, n);
    {
        let pool = ThreadPool::new(workers);
        multiply_parallel(&pool, &a, &b, &mut c_flat, Mode::Nd, base);
    }
    {
        let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
        let mut c_hier = Matrix::zeros(n, n);
        multiply_anchored(&pool, &a, &b, &mut c_hier, base, &cfg);
        assert_eq!(
            c_flat.max_abs_diff(&c_hier),
            0.0,
            "executors disagree on MM — scheduling must not change results"
        );
    }

    // Each measurement line is printed as soon as it exists (a crash in a
    // later run must not lose earlier results) and also collected for the
    // BENCH_exec.json summary.
    let mut measurements = Vec::new();
    let mut record = |line: String| {
        println!("{line}");
        measurements.push(line);
    };
    let m = measure_flat(&machine, reps, |pool| {
        let mut c = Matrix::zeros(n, n);
        multiply_parallel(pool, &a, &b, &mut c, Mode::Nd, base);
        std::hint::black_box(&c);
    });
    record(measurement_json("mm", "flat-ws", &layout, workers, &m));

    let m = measure_anchored(&machine, reps, |pool| {
        let mut c = Matrix::zeros(n, n);
        multiply_anchored(pool, &a, &b, &mut c, base, &cfg);
        std::hint::black_box(&c);
    });
    record(measurement_json("mm", "nd-exec", &layout, workers, &m));

    // ------------------------------------------------------------ Cholesky ----
    let spd = Matrix::random_spd(n, 3);

    let mut l_flat = spd.clone();
    {
        let pool = ThreadPool::new(workers);
        cholesky_parallel(&pool, &mut l_flat, Mode::Nd, base);
    }
    {
        let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
        let mut l_hier = spd.clone();
        cholesky_anchored(&pool, &mut l_hier, base, &cfg);
        assert_eq!(
            l_flat.max_abs_diff(&l_hier),
            0.0,
            "executors disagree on Cholesky — scheduling must not change results"
        );
    }

    let m = measure_flat(&machine, reps, |pool| {
        let mut l = spd.clone();
        cholesky_parallel(pool, &mut l, Mode::Nd, base);
        std::hint::black_box(&l);
    });
    record(measurement_json(
        "cholesky", "flat-ws", &layout, workers, &m,
    ));

    let m = measure_anchored(&machine, reps, |pool| {
        let mut l = spd.clone();
        cholesky_anchored(pool, &mut l, base, &cfg);
        std::hint::black_box(&l);
    });
    record(measurement_json(
        "cholesky", "nd-exec", &layout, workers, &m,
    ));

    // ------------------------------------------------------------------ LU ----
    let lua = Matrix::random(n, n, 5);

    let mut lu_flat = lua.clone();
    {
        let pool = ThreadPool::new(workers);
        lu_parallel(&pool, &mut lu_flat, Mode::Nd, base);
    }
    {
        let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
        let mut lu_hier = lua.clone();
        lu_anchored(&pool, &mut lu_hier, base, &cfg);
        assert_eq!(
            lu_flat.max_abs_diff(&lu_hier),
            0.0,
            "executors disagree on LU — scheduling must not change results"
        );
    }

    let m = measure_flat(&machine, reps, |pool| {
        let mut a = lua.clone();
        lu_parallel(pool, &mut a, Mode::Nd, base);
        std::hint::black_box(&a);
    });
    record(measurement_json("lu", "flat-ws", &layout, workers, &m));

    let m = measure_anchored(&machine, reps, |pool| {
        let mut a = lua.clone();
        lu_anchored(pool, &mut a, base, &cfg);
        std::hint::black_box(&a);
    });
    record(measurement_json("lu", "nd-exec", &layout, workers, &m));

    // ------------------------------------------------------------- 2-D FW ----
    let d0 = random_digraph(n, 4, 6);

    let mut d_flat = d0.clone();
    {
        let pool = ThreadPool::new(workers);
        apsp_parallel(&pool, &mut d_flat, Mode::Nd, base);
    }
    {
        let pool = HierarchicalPool::new(machine.clone(), StealPolicy::NearestFirst);
        let mut d_hier = d0.clone();
        apsp_anchored(&pool, &mut d_hier, base, &cfg);
        assert_eq!(
            d_flat.max_abs_diff(&d_hier),
            0.0,
            "executors disagree on APSP — scheduling must not change results"
        );
    }

    let m = measure_flat(&machine, reps, |pool| {
        let mut d = d0.clone();
        apsp_parallel(pool, &mut d, Mode::Nd, base);
        std::hint::black_box(&d);
    });
    record(measurement_json("fw2d", "flat-ws", &layout, workers, &m));

    let m = measure_anchored(&machine, reps, |pool| {
        let mut d = d0.clone();
        apsp_anchored(pool, &mut d, base, &cfg);
        std::hint::black_box(&d);
    });
    record(measurement_json("fw2d", "nd-exec", &layout, workers, &m));

    // -------------------------------- tile-packed layout (E18) ----
    eprintln!("exp_exec: layout section (row-major vs tile-packed)");
    let mut gemm_layout = Vec::new();
    for b in [32usize, 64] {
        let bench = bench_gemm_layout(b, n, reps);
        eprintln!(
            "exp_exec: gemm base {b}²: warm row {:.2} / packed {:.2} / tiled {:.2} GFLOP/s \
             ({:.2}x); cold row {:.2} / tiled {:.2} GFLOP/s ({:.2}x)",
            bench.warm_rowmajor_gflops,
            bench.warm_rowmajor_packed_gflops,
            bench.warm_tiled_gflops,
            bench.warm_tiled_speedup,
            bench.rowmajor_gflops,
            bench.tiled_gflops,
            bench.tiled_speedup
        );
        gemm_layout.push(bench.json());
    }
    let layout_pool = ThreadPool::new(workers);
    let mut alg_layout = Vec::new();
    let alg_cases: Vec<(&'static str, BuiltAlgorithm, Vec<Matrix>, bool)> = vec![
        (
            "mm",
            build_mm(n, base, Mode::Nd, 1.0),
            vec![Matrix::zeros(n, n), a.clone(), b.clone()],
            false,
        ),
        (
            "cholesky",
            build_cholesky(n, base, Mode::Nd),
            vec![spd.clone()],
            false,
        ),
        ("lu", build_lu(n, base, Mode::Nd), vec![lua.clone()], true),
        (
            "fw2d",
            build_fw2d(n, base, Mode::Nd),
            vec![d0.clone()],
            false,
        ),
    ];
    for (algorithm, built, pristine, needs_pivots) in &alg_cases {
        let extras = || {
            if *needs_pivots {
                ContextExtras::Pivots(n)
            } else {
                ContextExtras::None
            }
        };
        let row = bench_alg_on_layout(
            &layout_pool,
            built,
            pristine,
            base,
            Layout::RowMajor,
            extras(),
            reps,
        );
        let tiled = bench_alg_on_layout(
            &layout_pool,
            built,
            pristine,
            base,
            Layout::Tiled,
            extras(),
            reps,
        );
        alg_layout.push(
            AlgLayoutBench {
                algorithm,
                rowmajor_seconds: row,
                tiled_seconds: tiled,
                tiled_speedup: row / tiled,
            }
            .json(),
        );
    }
    drop(layout_pool);
    for line in gemm_layout.iter().chain(alg_layout.iter()) {
        println!("{{\"experiment\":\"exp_exec\",\"section\":\"layout\",\"bench\":{line}}}");
    }

    // -------------------------------- LU / FW-2D rebuild-vs-reuse (E16) ----
    eprintln!("exp_exec: LU / FW-2D rebuild-vs-reuse (compiled drivers)");
    let fine_base = base.min(8);
    let reuse_pool = ThreadPool::new(workers);
    let mut algorithm_reuse = Vec::new();
    {
        let mut a = lua.clone();
        let ctx = ExecContext::with_pivots(&mut [&mut a], n);
        let bench = bench_algorithm_reuse(
            &reuse_pool,
            reps,
            "lu",
            || build_lu(n, fine_base, Mode::Nd),
            &ctx,
            || a.as_mut_slice().copy_from_slice(lua.as_slice()),
        );
        algorithm_reuse.push(bench.json());
    }
    {
        let mut d = d0.clone();
        let ctx = ExecContext::from_matrices(&mut [&mut d]);
        let bench = bench_algorithm_reuse(
            &reuse_pool,
            reps,
            "fw2d",
            || build_fw2d(n, fine_base, Mode::Nd),
            &ctx,
            || d.as_mut_slice().copy_from_slice(d0.as_slice()),
        );
        algorithm_reuse.push(bench.json());
    }
    for line in &algorithm_reuse {
        println!(
            "{{\"experiment\":\"exp_exec\",\"section\":\"algorithm_reuse\",\"bench\":{line}}}"
        );
    }

    // ----------------------------- DRS fire-rule frontend (E17) ----
    eprintln!("exp_exec: DRS frontend (fire-rule build vs access oracle, reuse)");
    let mut drs_frontend = Vec::new();
    {
        let mut c = Matrix::zeros(n, n);
        let mut am = a.clone();
        let mut bm = b.clone();
        let ctx = ExecContext::from_matrices(&mut [&mut c, &mut am, &mut bm]);
        let bench = bench_frontend(
            &reuse_pool,
            reps,
            "mm",
            || build_mm(n, fine_base, Mode::Nd, 1.0),
            &ctx,
            || c.as_mut_slice().fill(0.0),
        );
        drs_frontend.push(bench.json());
    }
    {
        let s = nd_linalg::lcs::random_sequence(n, 41);
        let t = nd_linalg::lcs::random_sequence(n, 42);
        let mut table = Matrix::zeros(n + 1, n + 1);
        let ctx = ExecContext::with_sequences(&mut [&mut table], s, t);
        let bench = bench_frontend(
            &reuse_pool,
            reps,
            "lcs",
            || build_lcs(n, fine_base, Mode::Nd),
            &ctx,
            || table.as_mut_slice().fill(0.0),
        );
        drs_frontend.push(bench.json());
    }
    drop(reuse_pool);
    for line in &drs_frontend {
        println!("{{\"experiment\":\"exp_exec\",\"section\":\"drs_frontend\",\"bench\":{line}}}");
    }

    // -------------------------------------------- scheduler hot path ----
    eprintln!("exp_exec: scheduler microbenchmarks (empty tasks + rebuild-vs-reuse)");
    let sched = bench_scheduler(workers, n, base, reps);
    let sched_json = sched.json();
    println!(
        "{{\"experiment\":\"exp_exec\",\"section\":\"scheduler\",\
\"workers\":{workers},\"scheduler\":{sched_json}}}"
    );

    // ----------------------------------------------- tracing (E19) ----
    eprintln!("exp_exec: tracing overhead + traced anchored MM");
    let trace_bench = bench_trace(&machine, workers, n, base, reps);
    let trace_json = trace_bench.json();
    println!(
        "{{\"experiment\":\"exp_exec\",\"section\":\"trace\",\
\"workers\":{workers},\"trace\":{trace_json}}}"
    );

    // ------------------------------------------------- faults (E20) ----
    eprintln!("exp_exec: fault paths (drain latency, recovery, deadline, shedding)");
    let fault_bench = bench_faults(workers, reps);
    let faults_json = fault_bench.json();
    println!(
        "{{\"experiment\":\"exp_exec\",\"section\":\"faults\",\
\"workers\":{workers},\"faults\":{faults_json}}}"
    );

    let file = format!(
        "{{\n  \"experiment\": \"exp_exec\",\n  \"n\": {n},\n  \"reps\": {reps},\n  \
\"workers\": {workers},\n  \"layout\": \"{layout}\",\n  \"measurements\": [\n    {}\n  ],\n  \
\"layouts\": {{\n    \"gemm\": [\n      {}\n    ],\n    \"algorithms\": [\n      {}\n    ]\n  }},\n  \
\"algorithm_reuse\": [\n    {}\n  ],\n  \"drs_frontend\": [\n    {}\n  ],\n  \
\"scheduler\": {sched_json},\n  \"trace\": {trace_json},\n  \"faults\": {faults_json}\n}}\n",
        measurements.join(",\n    "),
        gemm_layout.join(",\n      "),
        alg_layout.join(",\n      "),
        algorithm_reuse.join(",\n    "),
        drs_frontend.join(",\n    ")
    );
    std::fs::write("BENCH_exec.json", &file).expect("failed to write BENCH_exec.json");
    eprintln!("exp_exec: wrote BENCH_exec.json");
}
