//! Model-side benchmarks: cost of unfolding spawn trees + running the DAG Rewriting
//! System, of the analysis metrics, and of the space-bounded scheduler simulation —
//! plus the σ-dilation ablation of DESIGN.md §8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nd_algorithms::common::Mode;
use nd_algorithms::trs::build_trs;
use nd_core::ecc::effective_cache_complexity;
use nd_core::pcc::pcc;
use nd_pmh::config::PmhConfig;
use nd_pmh::machine::MachineTree;
use nd_sched::space_bounded::{simulate_space_bounded, SbConfig};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_drs(c: &mut Criterion) {
    let mut group = c.benchmark_group("drs_build_trs");
    for n in [64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| build_trs(n, 8, Mode::Nd));
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let built = build_trs(128, 8, Mode::Nd);
    let root = built.tree.root();
    c.bench_function("pcc_trs_n128", |b| {
        b.iter(|| pcc(&built.tree, root, 1024));
    });
    c.bench_function("ecc_trs_n128", |b| {
        b.iter(|| effective_cache_complexity(&built.tree, &built.dag, root, 1024, 0.8));
    });
}

fn bench_sb_simulation(c: &mut Criterion) {
    let built = build_trs(128, 8, Mode::Nd);
    let machine = MachineTree::build(&PmhConfig::experiment_machine(2));
    c.bench_function("sb_simulate_trs_n128", |b| {
        b.iter(|| simulate_space_bounded(&built.tree, &built.dag, &machine, &SbConfig::default()));
    });
}

fn bench_sigma_ablation(c: &mut Criterion) {
    // DESIGN.md §8: the dilation parameter σ trades cache headroom against the
    // granularity of anchored tasks.  Completion time is the interesting output; the
    // bench reports the simulation cost, the exp_sched binary reports the times.
    let built = build_trs(128, 8, Mode::Nd);
    let machine = MachineTree::build(&PmhConfig::experiment_machine(2));
    let mut group = c.benchmark_group("ablation_sigma");
    for sigma_pct in [20u32, 33, 50, 80] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sigma_pct),
            &sigma_pct,
            |b, &sigma_pct| {
                let cfg = SbConfig {
                    sigma: sigma_pct as f64 / 100.0,
                    alpha_prime: 1.0,
                };
                b.iter(|| simulate_space_bounded(&built.tree, &built.dag, &machine, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_drs, bench_metrics, bench_sb_simulation, bench_sigma_ablation
}
criterion_main!(benches);
