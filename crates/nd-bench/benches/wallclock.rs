//! E12: real wall-clock execution on the work-stealing runtime — NP versus ND for
//! TRS, Cholesky, LCS and MM — plus the base-case-size ablation called out in
//! DESIGN.md §8.
//!
//! Both models run through the *same* dataflow executor; only the dependency DAG
//! differs, so the comparison isolates the programming model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nd_algorithms::common::Mode;
use nd_algorithms::{cholesky, lcs, mm, trs};
use nd_linalg::lcs::random_sequence;
use nd_linalg::Matrix;
use nd_runtime::ThreadPool;
use std::time::Duration;

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_trs(c: &mut Criterion) {
    let pool = ThreadPool::with_available_parallelism();
    let n = 512;
    let base = 64;
    let t = Matrix::random_lower_triangular(n, 1);
    let b = Matrix::random(n, n, 2);
    let mut group = c.benchmark_group("wallclock_trs_n512");
    for mode in [Mode::Np, Mode::Nd] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &mode,
            |bench, &mode| {
                bench.iter(|| {
                    let mut x = b.clone();
                    trs::solve_parallel(&pool, &t, &mut x, mode, base);
                    x
                });
            },
        );
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let pool = ThreadPool::with_available_parallelism();
    let n = 512;
    let base = 64;
    let a = Matrix::random_spd(n, 3);
    let mut group = c.benchmark_group("wallclock_cholesky_n512");
    for mode in [Mode::Np, Mode::Nd] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &mode,
            |bench, &mode| {
                bench.iter(|| {
                    let mut l = a.clone();
                    cholesky::cholesky_parallel(&pool, &mut l, mode, base);
                    l
                });
            },
        );
    }
    group.finish();
}

fn bench_lcs(c: &mut Criterion) {
    let pool = ThreadPool::with_available_parallelism();
    let n = 2048;
    let base = 64;
    let s = random_sequence(n, 4);
    let t = random_sequence(n, 5);
    let mut group = c.benchmark_group("wallclock_lcs_n2048");
    for mode in [Mode::Np, Mode::Nd] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &mode,
            |bench, &mode| {
                bench.iter(|| lcs::lcs_parallel(&pool, &s, &t, mode, base).0);
            },
        );
    }
    group.finish();
}

fn bench_mm(c: &mut Criterion) {
    let pool = ThreadPool::with_available_parallelism();
    let n = 256;
    let base = 32;
    let a = Matrix::random(n, n, 6);
    let b = Matrix::random(n, n, 7);
    let mut group = c.benchmark_group("wallclock_mm_n256");
    for mode in [Mode::Np, Mode::Nd] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &mode,
            |bench, &mode| {
                bench.iter(|| {
                    let mut cmat = Matrix::zeros(n, n);
                    mm::multiply_parallel(&pool, &a, &b, &mut cmat, mode, base);
                    cmat
                });
            },
        );
    }
    group.finish();
}

fn bench_base_case_ablation(c: &mut Criterion) {
    // DESIGN.md §8: the base-case (strand) size trades scheduler overhead against
    // exposed parallelism.
    let pool = ThreadPool::with_available_parallelism();
    let n = 512;
    let t = Matrix::random_lower_triangular(n, 8);
    let b = Matrix::random(n, n, 9);
    let mut group = c.benchmark_group("ablation_trs_base_case");
    for base in [32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(base), &base, |bench, &base| {
            bench.iter(|| {
                let mut x = b.clone();
                trs::solve_parallel(&pool, &t, &mut x, Mode::Nd, base);
                x
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure(&mut Criterion::default());
    targets = bench_trs, bench_cholesky, bench_lcs, bench_mm, bench_base_case_ablation
}
criterion_main!(benches);
