//! Offline shim for `parking_lot`: `Mutex` and `Condvar` with the parking_lot
//! API shape (non-poisoning `lock()`, `Condvar::wait(&mut guard)`), implemented
//! over `std::sync`.  Poisoning is swallowed by taking the inner guard from a
//! poisoned error — the workspace treats a panicked critical section as fatal
//! to the test that caused it, not to unrelated threads.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over [`sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so that `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access to the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the parking_lot calling convention (the guard is
/// passed by mutable reference and re-acquired in place).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified; the guard is released while waiting and held
    /// again on return.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(1));
        }
        drop(g);
        h.join().unwrap();
    }
}
