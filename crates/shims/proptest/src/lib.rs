//! Offline shim for `proptest`: the macro surface this workspace uses,
//! implemented as a deterministic seeded loop.
//!
//! Differences from the real crate, by design:
//!
//! * cases are drawn from a fixed per-test seed (no persisted failure corpus),
//! * there is no shrinking — a failing case reports its inputs via the panic
//!   message of the underlying `assert!`, and the run is reproducible because
//!   the seed is derived from the test's name,
//! * only range strategies (`lo..hi` on integers) are implemented.

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng as _, SeedableRng as _};

/// Runner configuration (the `with_cases` subset).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Derives the deterministic per-test RNG (seeded from the test's name).
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` running `body` for `cases` deterministic random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a property (plain `assert!`; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn assume_filters(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        use crate::Strategy;
        let mut a = crate::rng_for_test("t");
        let mut b = crate::rng_for_test("t");
        for _ in 0..10 {
            assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
        }
    }
}
