//! Offline shim for `criterion`: the API subset the `nd-bench` benches use,
//! backed by a plain wall-clock timer.
//!
//! No statistics beyond mean/min are computed and nothing is persisted; each
//! benchmark prints one line.  The iteration protocol matches criterion's
//! closely enough that the bench sources compile unchanged against the real
//! crate if it ever becomes available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, name, &mut f);
        self
    }
}

/// Identifier of one benchmark inside a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id naming only the parameter (the group provides the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against one input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    deadline: Instant,
    warm_up: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling until the sample count
    /// or the measurement-time budget is reached.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > self.deadline {
                break;
            }
        }
    }
}

fn run_one(criterion: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: criterion.sample_size,
        deadline: Instant::now() + criterion.measurement_time,
        warm_up: criterion.warm_up_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<40} mean {mean:>12.2?}   min {min:>12.2?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = quick();
        let mut runs = 0usize;
        c.bench_function("t", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs >= 3);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 7).label, "f/7");
    }
}
