//! Offline shim for `crossbeam`: the `deque` module only.
//!
//! The real crate's Chase–Lev deques are lock-free; this shim provides the
//! same `Worker` / `Stealer` / `Injector` / `Steal` API over mutex-protected
//! `VecDeque`s.  Semantics match (LIFO owner end, FIFO steal end, batch steal
//! moves up to half the victim's queue); only the synchronisation cost
//! differs, which the workspace's correctness tests and experiments tolerate.

pub mod deque {
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// Initial capacity of every deque and injector buffer.
    ///
    /// `VecDeque` capacity persists across pops, so a queue whose length never
    /// exceeds its high-water mark performs no heap allocation in steady
    /// state.  Pre-reserving a generous buffer up front means compiled task
    /// graphs with up to this many simultaneously queued tasks run
    /// allocation-free from their very first execution — the property the
    /// workspace's counting-allocator test pins down.
    const INITIAL_CAPACITY: usize = 1024;

    /// Outcome of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    /// The owner's handle of a work-stealing deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle for stealing from another worker's deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Worker<T> {
        /// Creates a LIFO deque (owner pushes and pops the same end).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::with_capacity(INITIAL_CAPACITY))),
            }
        }

        /// A stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, task: T) {
            self.queue.lock().push_back(task);
        }

        /// Pops a task from the owner end (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().pop_back()
        }

        /// `true` if the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().len()
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the steal end (FIFO).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` if the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }
    }

    /// A FIFO queue every worker can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::with_capacity(INITIAL_CAPACITY)),
            }
        }

        /// Pushes a task.
        pub fn push(&self, task: T) {
            self.queue.lock().push_back(task);
        }

        /// Steals one task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `dest` (up to half the queue) and pops one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            let extra = q.len() / 2;
            for _ in 0..extra {
                match q.pop_front() {
                    Some(t) => dest.push(t),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        /// `true` if the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::*;

    #[test]
    fn worker_is_lifo_and_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_steal_moves_half() {
        let inj = Injector::new();
        for i in 0..7 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // 6 remained, 3 moved to the worker.
        assert_eq!(w.len(), 3);
        assert_eq!(inj.len(), 3);
    }
}
