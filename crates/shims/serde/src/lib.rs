//! Offline shim for `serde`: marker traits plus the no-op derives.
//!
//! The workspace derives `Serialize` / `Deserialize` on its model types but
//! never actually serializes them (experiment binaries print by hand), so the
//! traits carry no methods here.  The derive macros and the traits share their
//! names exactly as in the real crate, so `use serde::{Serialize, Deserialize}`
//! imports both the macro and the trait.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
