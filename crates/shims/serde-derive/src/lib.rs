//! Offline shim for `serde_derive`: the derives are accepted and expand to
//! nothing.  Nothing in this workspace serializes through serde — the derives
//! on model types exist so that downstream users of the real crates could —
//! so empty expansions are sufficient and keep the build dependency-free.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
