//! Offline shim for `rand`: the API subset this workspace uses.
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — fast,
//! high-quality, and deterministic per seed.  Note the streams differ from the
//! real `rand` crate's `StdRng` (ChaCha12), so seeds reproduce results only
//! within this shim.

use std::ops::Range;

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be drawn uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (the `gen_range` subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open range `low..high`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample an empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Multiply-shift range reduction; the modulo bias is < 2^-40
                // for every span this workspace uses.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(r as Self)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        low + unit * (high - low)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000))
            .count();
        assert!(same < 50, "different seeds should diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let i = rng.gen_range(0usize..4);
            assert!(i < 4);
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.gen_range(0.0..10.0);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.5 && hi > 9.5, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(5u32..5);
    }
}
