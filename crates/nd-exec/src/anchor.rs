//! Static anchoring: pinning `σ·M_i`-maximal task subtrees to subclusters.
//!
//! The space-bounded scheduler of the paper anchors every `σ·M_i`-maximal task
//! to a level-`i` cache and confines its strands to that cache's subcluster.
//! This module computes the same assignment for *real* execution, reusing the
//! maximal-task decomposition `nd-sched` already derives for its cost model
//! ([`StrandCosts::maximal_of`]) and the paper's allocation function `g_i(S)`
//! ([`allocation_fanout`]):
//!
//! * tasks are anchored level by level from the top of the hierarchy down,
//!   each to the candidate cache with the most remaining `σ·M_i` budget —
//!   greedy, like the simulator, but ahead of time rather than at readiness
//!   (real execution cannot afford a global scheduler lock per task);
//! * a task anchored at level `i` is allocated `g_i(S)` of the child caches
//!   below its anchor, and its subtasks may only anchor inside that
//!   allocation — so anchors nest exactly as in Section 4;
//! * every strand inherits the level-1 anchor of its enclosing maximal task
//!   as a [`Placement`] for the topology-aware pool.
//!
//! Because the assignment is static, `σ·M_i` budgets are charged for the whole
//! run instead of per-residency; when a level's tasks exceed its budget the
//! anchoring degrades to balanced partitioning (tracked in
//! [`Anchoring::overflow_events`], the analogue of the simulator's emergency
//! anchoring).

use nd_core::dag::AlgorithmDag;
use nd_core::spawn_tree::SpawnTree;
use nd_pmh::machine::{CacheId, MachineTree};
use nd_runtime::dataflow::Placement;
use nd_sched::cost::{MissModel, StrandCosts};
use nd_sched::space_bounded::{allocation_fanout, TaskDecomposition};
use std::collections::HashMap;

/// Parameters of the anchoring discipline (mirrors
/// [`SbConfig`](nd_sched::space_bounded::SbConfig)).
#[derive(Clone, Copy, Debug)]
pub struct AnchorConfig {
    /// The dilation parameter `σ ∈ (0, 1)`: tasks anchored to a level-`i`
    /// cache occupy at most `σ·M_i` words of its budget.
    pub sigma: f64,
    /// The allocation exponent `α′` used by `g_i(S)`.
    pub alpha_prime: f64,
}

impl Default for AnchorConfig {
    fn default() -> Self {
        AnchorConfig {
            sigma: 1.0 / 3.0,
            alpha_prime: 1.0,
        }
    }
}

/// The computed anchoring of one algorithm DAG onto one machine tree.
#[derive(Clone, Debug)]
pub struct Anchoring {
    /// Per-DAG-vertex placement: strands are pinned to the queue group of the
    /// level-1 cache their maximal task was anchored to; barriers run anywhere.
    pub placement: Vec<Placement>,
    /// Number of tasks anchored at each cache level (level 1 first).
    pub anchors_per_level: Vec<u64>,
    /// Tasks anchored past a full cache's `σ·M_i` budget (static analogue of
    /// the simulator's emergency anchoring; zero when everything fits).
    pub overflow_events: u64,
    /// The `σ·M_i` thresholds used per level.
    pub thresholds: Vec<u64>,
    /// For every level-1 cache, the total anchored footprint in words (used by
    /// tests and the experiment binaries to inspect balance).
    pub level1_footprint: Vec<u64>,
}

/// Computes the static anchoring of `dag` (with spawn tree `tree`) onto
/// `machine`.
///
/// `tree` and `dag` must describe the same program, as for
/// [`simulate_space_bounded`](nd_sched::space_bounded::simulate_space_bounded).
pub fn compute_anchoring(
    tree: &SpawnTree,
    dag: &AlgorithmDag,
    machine: &MachineTree,
    cfg: &AnchorConfig,
) -> Anchoring {
    let config = machine.config();
    let levels = config.cache_levels();
    let costs = StrandCosts::compute(tree, dag, config, cfg.sigma, MissModel::Anchored);
    let n = dag.vertex_count();

    // ---- the decomposition tasks, shared with the simulator ----
    let tasks = TaskDecomposition::compute(tree, dag, &costs);
    let vertex_dtask = &tasks.vertex_task;

    // ---- greedy top-down anchoring under the σ·M_i budgets ----
    let mut space_left: Vec<f64> = machine
        .cache_ids()
        .map(|c| cfg.sigma * config.size(machine.cache(c).level) as f64)
        .collect();
    let mut anchor: Vec<Option<CacheId>> = vec![None; tasks.task_count()];
    let mut allocation: Vec<Vec<CacheId>> = vec![Vec::new(); tasks.task_count()];
    let mut anchors_per_level = vec![0u64; levels];
    let mut overflow_events = 0u64;

    let mut order: Vec<usize> = (0..tasks.task_count()).collect();
    order.sort_by_key(|&d| (std::cmp::Reverse(tasks.level[d]), d));
    for d in order {
        let level = tasks.level[d];
        let candidates: Vec<CacheId> = match tasks.parent[d] {
            None => machine.top_caches().to_vec(),
            Some(p) => {
                debug_assert!(anchor[p].is_some(), "parents are anchored first");
                if allocation[p].is_empty() {
                    // Defensive: fall back to every child of the parent's anchor.
                    anchor[p]
                        .map(|c| machine.cache(c).children.clone())
                        .unwrap_or_else(|| machine.top_caches().to_vec())
                } else {
                    allocation[p].clone()
                }
            }
        };
        let best = candidates
            .iter()
            .copied()
            .max_by(|a, b| {
                space_left[a.0 as usize]
                    .partial_cmp(&space_left[b.0 as usize])
                    .unwrap()
            })
            .expect("every task has at least one candidate cache");
        let size = tasks.size[d] as f64;
        if space_left[best.0 as usize] < size {
            overflow_events += 1;
        }
        space_left[best.0 as usize] -= size;
        anchor[d] = Some(best);
        anchors_per_level[level - 1] += 1;
        if level > 1 {
            let g = allocation_fanout(tasks.size[d], level, config, cfg.alpha_prime);
            let mut children = machine.cache(best).children.clone();
            children.sort_by(|a, b| {
                space_left[b.0 as usize]
                    .partial_cmp(&space_left[a.0 as usize])
                    .unwrap()
            });
            children.truncate(g);
            allocation[d] = children;
        }
    }

    // ---- strand placements from the level-1 anchors ----
    let mut placement = vec![Placement::Anywhere; n];
    let mut level1_footprint = vec![0u64; machine.caches_at_level(1).len()];
    let level1_index: HashMap<u32, usize> = machine
        .caches_at_level(1)
        .iter()
        .enumerate()
        .map(|(i, c)| (c.0, i))
        .collect();
    for v in dag.vertex_ids() {
        if !dag.vertex(v).is_strand() {
            continue;
        }
        if let Some(d) = vertex_dtask[0][v.index()] {
            if let Some(c) = anchor[d] {
                placement[v.index()] = Placement::Group(c.0);
            }
        }
    }
    for (d, &task_anchor) in anchor.iter().enumerate() {
        if tasks.level[d] == 1 {
            if let Some(c) = task_anchor {
                level1_footprint[level1_index[&c.0]] += tasks.size[d];
            }
        }
    }

    Anchoring {
        placement,
        anchors_per_level,
        overflow_events,
        thresholds: costs.thresholds,
        level1_footprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_algorithms::common::Mode;
    use nd_algorithms::mm::build_mm;
    use nd_algorithms::trs::build_trs;
    use nd_pmh::config::{CacheLevelSpec, PmhConfig};

    fn machine() -> MachineTree {
        MachineTree::build(&PmhConfig::new(
            vec![
                CacheLevelSpec::new(1 << 10, 2, 10),
                CacheLevelSpec::new(1 << 14, 2, 100),
            ],
            2,
        ))
    }

    #[test]
    fn every_strand_is_pinned_to_a_level1_cluster() {
        let built = build_mm(32, 8, Mode::Nd, 1.0);
        let m = machine();
        let anchoring = compute_anchoring(&built.tree, &built.dag, &m, &AnchorConfig::default());
        let level1: Vec<u32> = m.caches_at_level(1).iter().map(|c| c.0).collect();
        let mut pinned = 0usize;
        for v in built.dag.vertex_ids() {
            match anchoring.placement[v.index()] {
                Placement::Group(g) => {
                    assert!(built.dag.vertex(v).is_strand());
                    assert!(level1.contains(&g), "strands anchor at level 1");
                    pinned += 1;
                }
                Placement::Anywhere => {
                    assert!(!built.dag.vertex(v).is_strand(), "strands must be pinned");
                }
            }
        }
        assert_eq!(pinned, built.dag.strand_count());
    }

    #[test]
    fn anchors_nest_along_the_machine_tree() {
        // A strand's level-1 anchor must sit inside the subtree of the cache
        // its level-2 task was anchored to — the paper's allocation property.
        let built = build_trs(64, 8, Mode::Nd);
        let m = machine();
        let cfg = AnchorConfig::default();
        let config = m.config();
        let costs = StrandCosts::compute(
            &built.tree,
            &built.dag,
            config,
            cfg.sigma,
            MissModel::Anchored,
        );
        let anchoring = compute_anchoring(&built.tree, &built.dag, &m, &cfg);

        // Recover the level-2 anchor of each level-2 maximal node by re-running
        // the public API at level-2 granularity: instead, check the weaker but
        // sufficient property directly — all strands of one level-2 maximal
        // task use level-1 caches under a single level-2 cache.
        let mut l2_to_l1: HashMap<u32, Vec<u32>> = HashMap::new();
        for v in built.dag.vertex_ids() {
            if !built.dag.vertex(v).is_strand() {
                continue;
            }
            let Some(l2node) = costs.maximal_of[1][v.index()] else {
                continue;
            };
            if let Placement::Group(g) = anchoring.placement[v.index()] {
                l2_to_l1.entry(l2node.0).or_default().push(g);
            }
        }
        assert!(!l2_to_l1.is_empty());
        for (l2node, l1s) in l2_to_l1 {
            let parents: std::collections::HashSet<u32> = l1s
                .iter()
                .map(|&g| m.cache(CacheId(g)).parent.expect("L1 has a parent").0)
                .collect();
            assert_eq!(
                parents.len(),
                1,
                "level-2 task {l2node} scattered over level-2 caches {parents:?}"
            );
        }
    }

    #[test]
    fn footprints_are_balanced_across_level1_caches() {
        let built = build_mm(64, 8, Mode::Nd, 1.0);
        let m = machine();
        let anchoring = compute_anchoring(&built.tree, &built.dag, &m, &AnchorConfig::default());
        let total: u64 = anchoring.level1_footprint.iter().sum();
        assert!(total > 0);
        let used = anchoring
            .level1_footprint
            .iter()
            .filter(|&&f| f > 0)
            .count();
        assert!(
            used >= 2,
            "greedy anchoring should spread load over clusters: {:?}",
            anchoring.level1_footprint
        );
        assert_eq!(anchoring.anchors_per_level.len(), 2);
        assert!(anchoring.anchors_per_level[0] > 0);
        assert!(anchoring.anchors_per_level[1] > 0);
    }
}
