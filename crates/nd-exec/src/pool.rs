//! A thread pool whose workers mirror a PMH machine tree.
//!
//! [`HierarchicalPool`] instantiates `nd-runtime`'s work-stealing pool with a
//! [`PoolTopology`] derived from a [`MachineTree`]: one worker per simulated
//! processor, one queue group per cache instance (so a task anchored at any
//! cache level has a queue only that subtree's workers poll), and a per-worker
//! victim order that steals from the closest workers first — measured by the
//! level of the lowest cache the thief and victim share.
//!
//! The steal *distance* of every successful deque steal is recorded by the
//! underlying pool: distance 0 means thief and victim share a level-1 cache,
//! distance `d` means the lowest common cache is at level `d + 1`, and the
//! largest class means the steal crossed the root memory.  Cross-cluster
//! steals (distance ≥ 1) are exactly the locality violations flat work
//! stealing commits freely; [`StealPolicy::Strict`] forbids them outright,
//! which is the paper's anchoring property enforced to the letter.

use nd_pmh::machine::{MachineTree, ProcId};
use nd_pmh::topology::detect_host;
use nd_runtime::pool::{Job, PoolTopology, ThreadPool};

/// How far idle workers may steal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StealPolicy {
    /// Steal from anyone, nearest cluster first (work-conserving; cross-cluster
    /// steals are permitted but counted).
    NearestFirst,
    /// Steal only from workers sharing a level-1 cache (paper-faithful
    /// anchoring: a task anchored to a subcluster can never leave it).
    Strict,
}

/// A work-stealing pool shaped like a PMH machine tree.
pub struct HierarchicalPool {
    pool: ThreadPool,
    machine: MachineTree,
    policy: StealPolicy,
}

impl HierarchicalPool {
    /// Builds a pool with one worker per processor of `machine`.
    pub fn new(machine: MachineTree, policy: StealPolicy) -> Self {
        let topology = topology_of(&machine, policy);
        HierarchicalPool {
            pool: ThreadPool::with_topology(topology),
            machine,
            policy,
        }
    }

    /// Builds a pool mirroring the detected host hierarchy.
    pub fn from_host(policy: StealPolicy) -> Self {
        HierarchicalPool::new(detect_host().machine(), policy)
    }

    /// The underlying thread pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// The machine tree this pool mirrors.
    pub fn machine(&self) -> &MachineTree {
        &self.machine
    }

    /// The steal policy the pool was built with.
    pub fn policy(&self) -> StealPolicy {
        self.policy
    }

    /// Number of worker threads (= processors of the machine tree).
    pub fn num_workers(&self) -> usize {
        self.pool.num_threads()
    }

    /// Number of level-1 subclusters (the innermost worker groups).
    pub fn cluster_count(&self) -> usize {
        self.machine.caches_at_level(1).len()
    }

    /// Submits a job restricted to the subcluster of one cache instance.
    pub fn spawn_to_cache(&self, cache: nd_pmh::machine::CacheId, job: Job) {
        self.pool.spawn_to_group(cache.0 as usize, job);
    }

    /// Successful deque steals bucketed by distance class (0 = same level-1
    /// cache, rising with the level of the lowest common cache).
    pub fn steals_by_distance(&self) -> Vec<u64> {
        self.pool.steals_by_distance()
    }

    /// Steals that left a level-1 subcluster (distance ≥ 1).  Always zero under
    /// [`StealPolicy::Strict`].
    pub fn cross_cluster_steals(&self) -> u64 {
        self.steals_by_distance().iter().skip(1).sum()
    }
}

/// The distance class between two workers: the index (into the thief's cache
/// path) of the lowest cache containing both, or one past the last level when
/// only the root memory is shared.
fn worker_distance(machine: &MachineTree, a: usize, b: usize) -> usize {
    let path = machine.path_of(ProcId(a as u32));
    for (i, &cache) in path.iter().enumerate() {
        if machine.cache(cache).processors.contains(&ProcId(b as u32)) {
            return i;
        }
    }
    path.len()
}

/// A *flat* topology (single group, ring-order locality-blind stealing) that
/// still carries `machine`'s distance classification, so the steal counters
/// reveal how many steals plain work stealing commits across the machine's
/// cluster boundaries.  This is the instrumented baseline `exp_exec` compares
/// the anchored executor against.
pub fn flat_topology_with_distances(machine: &MachineTree) -> PoolTopology {
    let p = machine.processor_count();
    let mut topology = PoolTopology::flat(p);
    for w in 0..p {
        topology.steal_distance[w] = (0..p).map(|v| worker_distance(machine, w, v)).collect();
    }
    topology
}

/// Derives the pool topology of a machine tree.
fn topology_of(machine: &MachineTree, policy: StealPolicy) -> PoolTopology {
    let p = machine.processor_count();
    let num_groups = machine.cache_count();
    let mut groups_of_worker = Vec::with_capacity(p);
    let mut steal_order = Vec::with_capacity(p);
    let mut steal_distance = Vec::with_capacity(p);
    for w in 0..p {
        groups_of_worker.push(
            machine
                .path_of(ProcId(w as u32))
                .iter()
                .map(|c| c.0 as usize)
                .collect::<Vec<_>>(),
        );
        let distances: Vec<usize> = (0..p).map(|v| worker_distance(machine, w, v)).collect();
        let mut order: Vec<usize> = (0..p).filter(|&v| v != w).collect();
        order.sort_by_key(|&v| (distances[v], v));
        if policy == StealPolicy::Strict {
            order.retain(|&v| distances[v] == 0);
        }
        steal_order.push(order);
        steal_distance.push(distances);
    }
    PoolTopology {
        num_threads: p,
        num_groups,
        groups_of_worker,
        steal_order,
        steal_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_pmh::config::PmhConfig;

    fn machine() -> MachineTree {
        // 2 cache levels: L1s hold 2 workers, L2s hold 2 L1s, 2 L2s → 8 workers.
        MachineTree::build(&PmhConfig::new(
            vec![
                nd_pmh::config::CacheLevelSpec::new(64, 2, 10),
                nd_pmh::config::CacheLevelSpec::new(512, 2, 100),
            ],
            2,
        ))
    }

    #[test]
    fn steal_order_is_nearest_cluster_first() {
        let m = machine();
        let topo = topology_of(&m, StealPolicy::NearestFirst);
        assert_eq!(topo.num_threads, 8);
        // Worker 0 shares its L1 with worker 1, its L2 with workers 2–3, and
        // nothing below the root with workers 4–7.
        assert_eq!(topo.steal_order[0][0], 1);
        assert_eq!(&topo.steal_order[0][1..3], &[2, 3]);
        assert_eq!(&topo.steal_order[0][3..], &[4, 5, 6, 7]);
        assert_eq!(topo.steal_distance[0][1], 0);
        assert_eq!(topo.steal_distance[0][2], 1);
        assert_eq!(topo.steal_distance[0][5], 2);
        // Distances are symmetric.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(topo.steal_distance[a][b], topo.steal_distance[b][a]);
            }
        }
    }

    #[test]
    fn strict_policy_only_keeps_l1_siblings() {
        let m = machine();
        let topo = topology_of(&m, StealPolicy::Strict);
        for w in 0..8 {
            assert_eq!(topo.steal_order[w].len(), 1, "one L1 sibling each");
            assert_eq!(topo.steal_distance[w][topo.steal_order[w][0]], 0);
        }
    }

    #[test]
    fn flat_topology_keeps_machine_distances_but_ring_order() {
        let m = machine();
        let topo = flat_topology_with_distances(&m);
        assert_eq!(topo.num_groups, 1, "flat baseline has a single group");
        // Ring order: worker 0 steals 1, 2, … in index order (locality-blind).
        assert_eq!(topo.steal_order[0], vec![1, 2, 3, 4, 5, 6, 7]);
        // But distances still classify cluster boundaries for the counters.
        assert_eq!(topo.steal_distance[0][1], 0);
        assert_eq!(topo.steal_distance[0][2], 1);
        assert_eq!(topo.steal_distance[0][4], 2);
        assert_eq!(topo.max_distance(), 2);
    }

    #[test]
    fn groups_follow_the_cache_paths() {
        let m = machine();
        let topo = topology_of(&m, StealPolicy::NearestFirst);
        assert_eq!(topo.num_groups, m.cache_count());
        for w in 0..topo.num_threads {
            let path = m.path_of(ProcId(w as u32));
            assert_eq!(topo.groups_of_worker[w].len(), path.len());
            // Innermost group first (the level-1 cache).
            assert_eq!(topo.groups_of_worker[w][0], path[0].0 as usize);
        }
    }

    #[test]
    fn idle_clusters_steal_cross_cluster_and_strict_ones_never_do() {
        // Load only the first L1 subcluster (workers {0, 1}) and leave the
        // other three idle.  Under `NearestFirst` the idle workers must help
        // by stealing across the cluster boundary — observed through the
        // distance-classified steal counters — while under `Strict` the same
        // workload must finish with zero cross-cluster steals.
        use nd_runtime::latch::CountLatch;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let run = |policy: StealPolicy| -> (u64, Vec<u64>, Vec<u64>) {
            let pool = HierarchicalPool::new(machine(), policy);
            let first_l1 = pool.machine().caches_at_level(1)[0];
            let jobs = 400;
            let latch = Arc::new(CountLatch::new(jobs));
            let ran_on: Arc<Vec<AtomicU64>> =
                Arc::new((0..pool.num_workers()).map(|_| AtomicU64::new(0)).collect());
            for _ in 0..jobs {
                let l = Arc::clone(&latch);
                let r = Arc::clone(&ran_on);
                pool.spawn_to_cache(
                    first_l1,
                    Box::new(move |ctx| {
                        let mut x = 0u64;
                        for i in 0..100_000u64 {
                            x = x.wrapping_mul(31).wrapping_add(i);
                        }
                        std::hint::black_box(x);
                        r[ctx.worker_index].fetch_add(1, Ordering::Relaxed);
                        l.count_down();
                    }),
                );
            }
            latch.wait();
            let counts = ran_on.iter().map(|c| c.load(Ordering::Relaxed)).collect();
            (
                pool.cross_cluster_steals(),
                pool.steals_by_distance(),
                counts,
            )
        };

        let (cross, by_distance, _) = run(StealPolicy::NearestFirst);
        assert!(
            cross > 0,
            "idle clusters should have stolen across the boundary: {by_distance:?}"
        );
        assert_eq!(cross, by_distance[1] + by_distance[2]);

        let (cross_strict, _, counts) = run(StealPolicy::Strict);
        assert_eq!(
            cross_strict, 0,
            "strict stealing must never leave the cluster"
        );
        // ... and under strict anchoring the work really stayed on workers 0–1.
        assert_eq!(
            counts[0] + counts[1],
            400,
            "strict run leaked work: {counts:?}"
        );
        assert!(counts[2..].iter().all(|&c| c == 0));
    }

    #[test]
    fn pool_runs_jobs_and_counts_no_steals_when_idle() {
        let pool = HierarchicalPool::new(machine(), StealPolicy::NearestFirst);
        assert_eq!(pool.num_workers(), 8);
        assert_eq!(pool.cluster_count(), 4);
        let latch = std::sync::Arc::new(nd_runtime::latch::CountLatch::new(1));
        let l = std::sync::Arc::clone(&latch);
        pool.pool().spawn(Box::new(move |_| l.count_down()));
        latch.wait();
        assert_eq!(pool.steals_by_distance().len(), 3);
    }
}
