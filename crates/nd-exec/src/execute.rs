//! Running built algorithms on the hierarchy-aware pool.
//!
//! [`run_anchored`] is the anchored counterpart of
//! [`nd_algorithms::exec::run`]: it lowers a [`BuiltAlgorithm`] to the same
//! compiled, non-boxed graph form
//! ([`CompiledAlgorithm`](nd_algorithms::exec::CompiledAlgorithm)), computes
//! its [`Anchoring`] on the pool's machine tree, and executes it with every
//! strand routed to its anchor subcluster.  Placed execution therefore shares
//! the flat executor's hot path exactly — CSR successor arena, atomic
//! counter claims, self-resetting counters, inline tail-execution (which an
//! anchored strand only takes when the finishing worker belongs to the
//! successor's anchor group) — the placement vector is the only difference.
//! The convenience wrappers mirror the flat `*_parallel` drivers of
//! `nd-algorithms`, so experiments can swap executors without touching the
//! algorithm code.
//!
//! Anchored quickstart — all-pairs shortest paths under `σ·M_i` placement:
//!
//! ```
//! use nd_exec::{AnchorConfig, HierarchicalPool, StealPolicy};
//! use nd_linalg::fw::{floyd_warshall_naive, random_digraph};
//! use nd_pmh::config::PmhConfig;
//! use nd_pmh::machine::MachineTree;
//!
//! let machine = MachineTree::build(&PmhConfig::experiment_machine(1));
//! let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
//! let mut d = random_digraph(32, 3, 1);
//! let mut expected = d.clone();
//! floyd_warshall_naive(&mut expected);
//! let stats = nd_exec::execute::apsp_anchored(&pool, &mut d, 8, &AnchorConfig::default());
//! assert!(d.max_abs_diff(&expected) < 1e-12);
//! assert!(stats.anchors_per_level.iter().all(|&a| a > 0));
//! ```

use crate::anchor::{compute_anchoring, AnchorConfig, Anchoring};
use crate::pool::HierarchicalPool;
use nd_algorithms::common::{BuiltAlgorithm, Mode};
use nd_algorithms::driver::ContextExtras;
use nd_algorithms::exec::{ExecContext, Layout};
use nd_algorithms::{cholesky, driver, fw1d, fw2d, lcs, lu, mm, trs};
use nd_linalg::getrf::PivotStore;
use nd_linalg::Matrix;
use nd_pmh::machine::CacheId;
use nd_runtime::dataflow::{ExecStats, Placement};
use nd_runtime::fault::{RunBudget, RunError};
use nd_trace::{Trace, TraceConfig, TraceSession};
use std::sync::Arc;

/// Statistics of one anchored execution.
#[derive(Clone, Debug)]
pub struct HierExecStats {
    /// The underlying dataflow execution statistics.
    pub exec: ExecStats,
    /// Tasks anchored per cache level (level 1 first).
    pub anchors_per_level: Vec<u64>,
    /// Anchorings that exceeded a cache's `σ·M_i` budget.
    pub overflow_events: u64,
    /// Successful deque steals during this run, bucketed by distance class
    /// (0 = within a level-1 subcluster).
    pub steals_by_distance: Vec<u64>,
}

impl HierExecStats {
    /// Steals that crossed a level-1 subcluster boundary during this run.
    pub fn cross_cluster_steals(&self) -> u64 {
        self.steals_by_distance.iter().skip(1).sum()
    }
}

/// Executes a built algorithm on the hierarchical pool under the anchoring
/// discipline, blocking until every task has run.
///
/// # Errors
/// Returns [`RunError::Panicked`] if a strand panics; the run drains, the
/// graph is left reset, and the pool stays usable (see
/// [`CompiledAlgorithm`](nd_algorithms::exec::CompiledAlgorithm::execute)).
pub fn run_anchored(
    pool: &HierarchicalPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
    cfg: &AnchorConfig,
) -> Result<HierExecStats, RunError> {
    run_anchored_with(pool, built, ctx, cfg, &RunBudget::UNBOUNDED)
}

/// Like [`run_anchored`], with a per-run [`RunBudget`] (wall-clock deadline
/// checked at every strand claim).
///
/// # Errors
/// Returns [`RunError::DeadlineExceeded`] if the budget expires mid-run, or
/// [`RunError::Panicked`] if a strand panics.
pub fn run_anchored_with(
    pool: &HierarchicalPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
    cfg: &AnchorConfig,
    budget: &RunBudget,
) -> Result<HierExecStats, RunError> {
    let anchoring: Anchoring = compute_anchoring(&built.tree, &built.dag, pool.machine(), cfg);
    let compiled = driver::compile_placed(built, ctx, anchoring.placement);
    let before = pool.steals_by_distance();
    let exec = compiled.execute_with(pool.pool(), budget)?;
    let after = pool.steals_by_distance();
    Ok(HierExecStats {
        exec,
        anchors_per_level: anchoring.anchors_per_level,
        overflow_events: anchoring.overflow_events,
        steals_by_distance: after
            .iter()
            .zip(before.iter())
            .map(|(a, b)| a - b)
            .collect(),
    })
}

/// The anchored counterpart of [`driver::run_once_traced`]: computes the
/// anchoring, executes the compiled graph under a
/// [`TraceSession`] on the hierarchical pool's tracer, and returns the
/// anchored statistics with the finished [`Trace`].  On top of the flat
/// driver's side tables (operation kinds, pedigree, dependency edges) the
/// trace carries, per strand, the anchor queue group and the cache level of
/// that group — so exported spans can be read against the paper's `σ·M_i`
/// anchoring discipline (which PMH subtree a strand was pinned to, and at
/// which level of the hierarchy).
///
/// # Errors
/// Returns [`RunError::Panicked`] if a strand panics.  The trace is finished
/// and returned either way — a faulted run's trace shows the caught fault
/// inline.
pub fn run_anchored_traced(
    pool: &HierarchicalPool,
    built: &BuiltAlgorithm,
    ctx: &ExecContext,
    cfg: &AnchorConfig,
) -> (Result<HierExecStats, RunError>, Trace) {
    let anchoring: Anchoring = compute_anchoring(&built.tree, &built.dag, pool.machine(), cfg);
    let machine = pool.machine();
    let (anchor_groups, anchor_levels): (Vec<u32>, Vec<u8>) = anchoring
        .placement
        .iter()
        .map(|p| match p {
            Placement::Group(g) => (*g, machine.cache(CacheId(*g)).level as u8),
            Placement::Anywhere => (u32::MAX, 0u8),
        })
        .unzip();
    let compiled = driver::compile_placed(built, ctx, anchoring.placement.clone());
    let mut meta = driver::trace_meta(built, &compiled);
    meta.anchor_groups = anchor_groups;
    meta.anchor_levels = anchor_levels;
    let before = pool.steals_by_distance();
    let session = TraceSession::start(pool.pool().tracer(), TraceConfig::from_env());
    let exec = compiled.execute(pool.pool());
    let trace = session.finish_with_meta(meta);
    let after = pool.steals_by_distance();
    let stats = exec.map(|exec| HierExecStats {
        exec,
        anchors_per_level: anchoring.anchors_per_level,
        overflow_events: anchoring.overflow_events,
        steals_by_distance: after
            .iter()
            .zip(before.iter())
            .map(|(a, b)| a - b)
            .collect(),
    });
    (stats, trace)
}

/// The anchored layout knob: executes `built` under `σ·M_i` anchoring against
/// row-major matrices on either layout — the anchored counterpart of
/// [`driver::run_once_on_layout`].  For [`Layout::Tiled`] the matrices are
/// packed into tile-packed storage (tile dimension `tile`), every strand is
/// routed to its anchor subcluster, and the result is unpacked back into
/// `mats` — so anchoring and contiguous tiles compose, and both layouts can
/// be compared bit-for-bit.
pub fn run_anchored_on_layout(
    pool: &HierarchicalPool,
    built: &BuiltAlgorithm,
    mats: &mut [&mut Matrix],
    tile: usize,
    layout: Layout,
    extras: ContextExtras,
    cfg: &AnchorConfig,
) -> (HierExecStats, Arc<PivotStore>) {
    let (tiles, ctx) = driver::bind_layout(mats, tile, layout, extras);
    let stats = run_anchored(pool, built, &ctx, cfg).expect("algorithm strand panicked");
    for (tile_mat, m) in tiles.iter().zip(mats.iter_mut()) {
        tile_mat.unpack_into(m);
    }
    (stats, Arc::clone(&ctx.pivots))
}

/// Computes `C += A·B` on the anchored executor with the given data layout
/// (tile dimension = `base`, so every base-case operand is one contiguous
/// slab when `layout` is [`Layout::Tiled`]).
pub fn multiply_anchored_on(
    pool: &HierarchicalPool,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    base: usize,
    layout: Layout,
    cfg: &AnchorConfig,
) -> HierExecStats {
    let n = c.rows();
    assert_eq!(a.rows(), n);
    assert_eq!(b.cols(), n);
    assert_eq!(a.cols(), b.rows());
    let built = mm::build_mm(n, base, Mode::Nd, 1.0);
    let mut a = a.clone();
    let mut b = b.clone();
    let (stats, _) = run_anchored_on_layout(
        pool,
        &built,
        &mut [c, &mut a, &mut b],
        base,
        layout,
        ContextExtras::None,
        cfg,
    );
    stats
}

/// Computes `C += A·B` on the anchored executor.
pub fn multiply_anchored(
    pool: &HierarchicalPool,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    base: usize,
    cfg: &AnchorConfig,
) -> HierExecStats {
    let n = c.rows();
    assert_eq!(a.rows(), n);
    assert_eq!(b.cols(), n);
    assert_eq!(a.cols(), b.rows());
    let built = mm::build_mm(n, base, Mode::Nd, 1.0);
    let mut a = a.clone();
    let mut b = b.clone();
    let ctx = ExecContext::from_matrices(&mut [c, &mut a, &mut b]);
    run_anchored(pool, &built, &ctx, cfg).expect("algorithm strand panicked")
}

/// Solves `T·X = B` in place in `b` (lower-triangular `t`) on the anchored
/// executor.
pub fn solve_anchored(
    pool: &HierarchicalPool,
    t: &Matrix,
    b: &mut Matrix,
    base: usize,
    cfg: &AnchorConfig,
) -> HierExecStats {
    let n = t.rows();
    assert_eq!(t.cols(), n);
    assert_eq!(b.rows(), n);
    assert_eq!(b.cols(), n, "this driver expects a square right-hand side");
    let built = trs::build_trs(n, base, Mode::Nd);
    let mut tm = t.clone();
    let ctx = ExecContext::from_matrices(&mut [&mut tm, b]);
    run_anchored(pool, &built, &ctx, cfg).expect("algorithm strand panicked")
}

/// Cholesky-factors `a` in place (lower triangle) on the anchored executor.
pub fn cholesky_anchored(
    pool: &HierarchicalPool,
    a: &mut Matrix,
    base: usize,
    cfg: &AnchorConfig,
) -> HierExecStats {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let built = cholesky::build_cholesky(n, base, Mode::Nd);
    let ctx = ExecContext::from_matrices(&mut [a]);
    let stats = run_anchored(pool, &built, &ctx, cfg).expect("algorithm strand panicked");
    a.zero_upper_triangle();
    stats
}

/// Factors `a` in place with partial pivoting on the anchored executor and
/// returns the global pivot vector (LAPACK convention) with the stats.
///
/// The runtime pivots travel through the context's lock-free
/// [`PivotStore`]; the anchored DAG ordering makes the
/// panel-to-swap handoff race-free exactly as on the flat executor.
pub fn lu_anchored(
    pool: &HierarchicalPool,
    a: &mut Matrix,
    base: usize,
    cfg: &AnchorConfig,
) -> (Vec<usize>, HierExecStats) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let built = lu::build_lu(n, base, Mode::Nd);
    let ctx = ExecContext::with_pivots(&mut [a], n);
    let stats = run_anchored(pool, &built, &ctx, cfg).expect("algorithm strand panicked");
    // SAFETY: the anchored execution above has completed; no writer holds
    // the store.
    let piv = unsafe { lu::assemble_global_pivots(&ctx.pivots, n, base) };
    (piv, stats)
}

/// Solves all-pairs shortest paths in place on the distance matrix `d` on the
/// anchored executor (blocked 2-D Floyd–Warshall).
pub fn apsp_anchored(
    pool: &HierarchicalPool,
    d: &mut Matrix,
    base: usize,
    cfg: &AnchorConfig,
) -> HierExecStats {
    let n = d.rows();
    assert_eq!(d.cols(), n);
    let built = fw2d::build_fw2d(n, base, Mode::Nd);
    let ctx = ExecContext::from_matrices(&mut [d]);
    run_anchored(pool, &built, &ctx, cfg).expect("algorithm strand panicked")
}

/// Runs the 1-D Floyd–Warshall recurrence on the anchored executor from the
/// given initial row (`initial[1..=n]` are the `d(0, ·)` values) and returns
/// the full table with the stats.  With this entry point every algorithm the
/// paper proves an asymptotic span bound for (MM, TRS, FW-1D, LCS) runs from
/// its fire-rule ND program through the `σ·M_i` anchoring discipline.
pub fn fw1d_anchored(
    pool: &HierarchicalPool,
    initial: &[f64],
    base: usize,
    cfg: &AnchorConfig,
) -> (Matrix, HierExecStats) {
    let n = initial.len() - 1;
    let built = fw1d::build_fw1d(n, base, Mode::Nd);
    let mut table = Matrix::zeros(n + 1, n + 1);
    for i in 1..=n {
        table[(0, i)] = initial[i];
    }
    let ctx = ExecContext::from_matrices(&mut [&mut table]);
    let stats = run_anchored(pool, &built, &ctx, cfg).expect("algorithm strand panicked");
    (table, stats)
}

/// Longest common subsequence of `s` and `t` on the anchored executor.
pub fn lcs_anchored(
    pool: &HierarchicalPool,
    s: &[u8],
    t: &[u8],
    base: usize,
    cfg: &AnchorConfig,
) -> (u64, HierExecStats) {
    assert_eq!(
        s.len(),
        t.len(),
        "this driver expects equal-length sequences"
    );
    let n = s.len();
    let built = lcs::build_lcs(n, base, Mode::Nd);
    let mut table = Matrix::zeros(n + 1, n + 1);
    let ctx = ExecContext::with_sequences(&mut [&mut table], s.to_vec(), t.to_vec());
    let stats = run_anchored(pool, &built, &ctx, cfg).expect("algorithm strand panicked");
    (table[(n, n)] as u64, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::StealPolicy;
    use nd_linalg::lcs::{lcs_naive, random_sequence};
    use nd_linalg::potrf::potrf_naive;
    use nd_linalg::trsm::trsm_lower_naive;
    use nd_pmh::config::{CacheLevelSpec, PmhConfig};
    use nd_pmh::machine::MachineTree;

    /// The two worker-cluster layouts the acceptance tests exercise: a single
    /// socket of 2×2 workers and a dual-socket machine of 2×(2×2) workers.
    fn layouts() -> Vec<MachineTree> {
        vec![
            MachineTree::build(&PmhConfig::new(
                vec![
                    CacheLevelSpec::new(1 << 10, 2, 10),
                    CacheLevelSpec::new(1 << 14, 2, 100),
                ],
                1,
            )),
            MachineTree::build(&PmhConfig::new(
                vec![
                    CacheLevelSpec::new(1 << 10, 2, 10),
                    CacheLevelSpec::new(1 << 14, 2, 100),
                ],
                2,
            )),
        ]
    }

    #[test]
    fn mm_matches_the_serial_kernel_bit_for_bit() {
        let a = Matrix::random(64, 64, 1);
        let b = Matrix::random(64, 64, 2);
        let mut expected = Matrix::zeros(64, 64);
        unsafe {
            nd_linalg::gemm::gemm_block(
                expected.as_ptr_view(),
                a.clone().as_ptr_view(),
                b.clone().as_ptr_view(),
                1.0,
            );
        }
        for machine in layouts() {
            let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
            let mut c = Matrix::zeros(64, 64);
            let stats = multiply_anchored(&pool, &a, &b, &mut c, 8, &AnchorConfig::default());
            assert_eq!(
                c.max_abs_diff(&expected),
                0.0,
                "anchored MM must be bit-identical to the serial kernel"
            );
            assert_eq!(
                stats.exec.tasks,
                stats.exec.tasks_per_worker.iter().sum::<u64>() as usize
            );
            assert!(stats.anchors_per_level.iter().all(|&a| a > 0));
        }
    }

    #[test]
    fn trs_matches_the_serial_kernel_bit_for_bit() {
        let t = Matrix::random_lower_triangular(64, 3);
        let b = Matrix::random(64, 64, 4);
        // The serial reference runs the same dispatched kernel family as the
        // blocked parallel path (fused updates in SIMD mode, plain in scalar
        // mode), so the comparison is exact in either configuration; the
        // textbook forward substitution grounds it numerically.
        let mut expected = b.clone();
        unsafe {
            nd_linalg::trsm::trsm_lower_block_ptr(t.clone().as_ptr_view(), expected.as_ptr_view());
        }
        let mut naive = b.clone();
        trsm_lower_naive(&t, &mut naive);
        assert!(expected.max_abs_diff(&naive) < 1e-12);
        for machine in layouts() {
            let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
            let mut x = b.clone();
            solve_anchored(&pool, &t, &mut x, 8, &AnchorConfig::default());
            assert_eq!(
                x.max_abs_diff(&expected),
                0.0,
                "anchored TRS must be bit-identical to the serial kernel"
            );
        }
    }

    #[test]
    fn cholesky_matches_the_serial_kernels_bit_for_bit() {
        let a = Matrix::random_spd(64, 5);
        // The bit-exact reference: the same block kernels executed serially
        // (one worker).  The blocked factorization's accumulation order
        // differs from the textbook `potrf_naive` loop, so the naive kernel
        // is only checked to rounding accuracy below.
        let serial_pool = HierarchicalPool::new(
            MachineTree::build(&PmhConfig::flat(1, 1 << 14, 10)),
            StealPolicy::NearestFirst,
        );
        let mut expected = a.clone();
        cholesky_anchored(&serial_pool, &mut expected, 8, &AnchorConfig::default());
        let mut naive = a.clone();
        potrf_naive(&mut naive);
        naive.zero_upper_triangle();
        assert!(expected.max_abs_diff(&naive) < 1e-12);
        for machine in layouts() {
            let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
            let mut l = a.clone();
            cholesky_anchored(&pool, &mut l, 8, &AnchorConfig::default());
            assert_eq!(
                l.max_abs_diff(&expected),
                0.0,
                "anchored Cholesky must be bit-identical to the serial kernels"
            );
        }
    }

    #[test]
    fn lu_matches_the_serial_oracle_bit_for_bit() {
        let n = 64;
        let a = Matrix::random(n, n, 41);
        // The bit-exact reference: the same block kernels executed by one
        // worker (the blocked accumulation order differs from `getrf_naive`,
        // which is therefore only checked to rounding accuracy).
        let serial_pool = HierarchicalPool::new(
            MachineTree::build(&PmhConfig::flat(1, 1 << 14, 10)),
            StealPolicy::NearestFirst,
        );
        let mut expected = a.clone();
        let (expected_piv, _) =
            lu_anchored(&serial_pool, &mut expected, 8, &AnchorConfig::default());
        let mut naive = a.clone();
        let naive_piv = nd_linalg::getrf::getrf_naive(&mut naive);
        assert_eq!(expected_piv, naive_piv, "pivot choices must coincide");
        assert!(expected.max_abs_diff(&naive) < 1e-9);
        for machine in layouts() {
            let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
            let mut lu = a.clone();
            let (piv, stats) = lu_anchored(&pool, &mut lu, 8, &AnchorConfig::default());
            assert_eq!(piv, expected_piv);
            assert_eq!(
                lu.max_abs_diff(&expected),
                0.0,
                "anchored LU must be bit-identical to the serial kernels"
            );
            assert!(stats.anchors_per_level.iter().all(|&a| a > 0));
        }
    }

    #[test]
    fn apsp_matches_the_serial_oracle_bit_for_bit() {
        let n = 64;
        let d0 = nd_linalg::fw::random_digraph(n, 3, 17);
        // The bit-exact reference: the same block kernels executed by one
        // worker.  The blocked elimination's candidate-path association order
        // differs from the textbook triple loop, so the naive oracle is only
        // checked to rounding accuracy.
        let serial_pool = HierarchicalPool::new(
            MachineTree::build(&PmhConfig::flat(1, 1 << 14, 10)),
            StealPolicy::NearestFirst,
        );
        let mut expected = d0.clone();
        apsp_anchored(&serial_pool, &mut expected, 8, &AnchorConfig::default());
        let mut naive = d0.clone();
        nd_linalg::fw::floyd_warshall_naive(&mut naive);
        assert!(expected.max_abs_diff(&naive) < 1e-12);
        for machine in layouts() {
            let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
            let mut d = d0.clone();
            let stats = apsp_anchored(&pool, &mut d, 8, &AnchorConfig::default());
            assert_eq!(
                d.max_abs_diff(&expected),
                0.0,
                "anchored APSP must be bit-identical to the serial kernels"
            );
            assert!(stats.exec.tasks > 0);
            assert!(stats.anchors_per_level.iter().all(|&a| a > 0));
        }
    }

    #[test]
    fn fw1d_matches_the_serial_kernel_exactly() {
        // Every table cell is a pure function of the previous row, computed
        // exactly once, so any schedule is bit-identical to the naive loop.
        let n = 64;
        let initial: Vec<f64> = (0..=n).map(|i| ((i * 7) % 13) as f64).collect();
        let expected = nd_linalg::fw::fw1d_naive(&initial);
        for machine in layouts() {
            let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
            let (table, stats) = fw1d_anchored(&pool, &initial, 8, &AnchorConfig::default());
            assert_eq!(
                table.max_abs_diff(&expected),
                0.0,
                "anchored 1-D FW must be bit-identical to the serial kernel"
            );
            assert!(stats.exec.tasks > 0);
            assert!(stats.anchors_per_level.iter().all(|&a| a > 0));
        }
    }

    #[test]
    fn lcs_matches_the_serial_kernel_exactly() {
        let s = random_sequence(128, 6);
        let t = random_sequence(128, 7);
        let expected = lcs_naive(&s, &t);
        for machine in layouts() {
            let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
            let (got, stats) = lcs_anchored(&pool, &s, &t, 16, &AnchorConfig::default());
            assert_eq!(got, expected);
            assert!(stats.exec.tasks > 0);
        }
    }

    #[test]
    fn strict_policy_never_crosses_clusters() {
        let machine = layouts().remove(1);
        let pool = HierarchicalPool::new(machine, StealPolicy::Strict);
        let a = Matrix::random(64, 64, 8);
        let b = Matrix::random(64, 64, 9);
        let mut c = Matrix::zeros(64, 64);
        let stats = multiply_anchored(&pool, &a, &b, &mut c, 8, &AnchorConfig::default());
        assert_eq!(
            stats.cross_cluster_steals(),
            0,
            "strict anchoring must keep every strand inside its subcluster"
        );
        assert_eq!(pool.cross_cluster_steals(), 0);
        let mut expected = Matrix::zeros(64, 64);
        unsafe {
            nd_linalg::gemm::gemm_block(
                expected.as_ptr_view(),
                a.clone().as_ptr_view(),
                b.clone().as_ptr_view(),
                1.0,
            );
        }
        assert_eq!(c.max_abs_diff(&expected), 0.0);
    }

    #[test]
    fn nearest_first_stealing_rebalances_an_idle_machine() {
        // Pin every task to one level-1 cluster by anchoring a workload whose
        // whole footprint fits one subcluster's budget, then check that the
        // *other* clusters' workers help only via steals, nearest first.
        let machine = layouts().remove(1);
        let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
        // A heavily imbalanced graph: one long chain of large leaf multiplies
        // all anchored together (sigma large enough that one L1 takes all).
        let cfg = AnchorConfig {
            sigma: 1e9, // everything fits the first cache considered
            alpha_prime: 1.0,
        };
        let a = Matrix::random(64, 64, 10);
        let b = Matrix::random(64, 64, 11);
        let mut c = Matrix::zeros(64, 64);
        let stats = multiply_anchored(&pool, &a, &b, &mut c, 8, &cfg);
        // With an absurd σ the greedy anchoring still spreads tasks over the
        // allocation, so just validate the bookkeeping is consistent: every
        // steal is classified, and the distance histogram sums to the total.
        let total: u64 = stats.steals_by_distance.iter().sum();
        assert_eq!(total, stats.exec.steals);
    }
}
