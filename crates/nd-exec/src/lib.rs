//! # nd-exec — the real hierarchy-aware space-bounded executor
//!
//! This crate is where the two halves of the paper finally meet.  `nd-sched`
//! *simulates* the space-bounded scheduler of Section 4 on a PMH model;
//! `nd-runtime` *really executes* algorithm DAGs, but with locality-blind flat
//! work stealing.  `nd-exec` runs the same [`TaskGraph`](nd_runtime::TaskGraph)s
//! on real threads **under the paper's anchoring discipline**:
//!
//! 1. the host's memory hierarchy is detected (or synthesized) by
//!    [`nd_pmh::topology`] and instantiated as a
//!    [`MachineTree`](nd_pmh::machine::MachineTree);
//! 2. a [`HierarchicalPool`] lays a topology over
//!    `nd-runtime`'s work-stealing pool: workers are grouped into subclusters
//!    mirroring the machine tree, each subcluster gets its own task queue, and
//!    idle workers steal **nearest-cluster-first**;
//! 3. the [`anchor`] module reuses `nd-sched`'s `σ·M_i`-maximal task
//!    decomposition ([`StrandCosts`](nd_sched::cost::StrandCosts)) and
//!    allocation function `g_i(S)` to pin every task subtree to a subcluster
//!    ahead of execution;
//! 4. the [`execute`] module lowers the algorithm to the compiled, non-boxed
//!    graph form of `nd-algorithms::exec` (CSR successor arena, atomic
//!    counter claims, self-resetting counters — see `nd_runtime::dataflow`
//!    for the build → execute → reset → execute lifecycle) and routes each
//!    ready strand to its anchor's subcluster queue, so chains of dependent
//!    tasks stay inside the cache subtree that holds their working set.
//!    Inline tail-execution applies under anchoring too: a lone ready
//!    successor runs in place only when the finishing worker belongs to the
//!    successor's anchor group, otherwise it is routed to that group's queue.
//!
//! The result is the repository's *paper-faithful real execution path*: all
//! seven algorithms — MM, TRS, Cholesky, LCS, 1-D Floyd–Warshall, LU with
//! partial pivoting and 2-D Floyd–Warshall (APSP) — run end-to-end on the
//! anchored executor and the tests check their outputs bit-for-bit against
//! the serial kernels of `nd-linalg`.  The loop-blocked algorithms (LU,
//! FW-2D) get their spawn trees from the access-set builder of
//! `nd-algorithms`, so the same `σ·M_i`-maximal decomposition anchors them
//! too; LU's runtime pivots travel through a lock-free
//! [`PivotStore`](nd_linalg::PivotStore) ordered by the DAG.
//!
//! ```
//! use nd_exec::{AnchorConfig, HierarchicalPool, StealPolicy};
//! use nd_pmh::config::PmhConfig;
//! use nd_pmh::machine::MachineTree;
//! use nd_linalg::Matrix;
//!
//! // Two sockets of 2×2 workers — or use `HierarchicalPool::from_host()`.
//! let machine = MachineTree::build(&PmhConfig::experiment_machine(1));
//! let pool = HierarchicalPool::new(machine, StealPolicy::NearestFirst);
//! let a = Matrix::random(32, 32, 1);
//! let b = Matrix::random(32, 32, 2);
//! let mut c = Matrix::zeros(32, 32);
//! nd_exec::execute::multiply_anchored(&pool, &a, &b, &mut c, 8, &AnchorConfig::default());
//! // Bit-identical to the serial block kernel (same per-process SIMD/scalar
//! // dispatch); the textbook triple loop agrees to rounding.
//! assert!(c.max_abs_diff(&a.matmul(&b)) < 1e-12);
//! ```

#![warn(rust_2018_idioms)]
#![deny(missing_docs)]

pub mod anchor;
pub mod execute;
pub mod pool;

pub use anchor::{compute_anchoring, AnchorConfig, Anchoring};
pub use execute::{run_anchored, run_anchored_traced, HierExecStats};
pub use pool::{HierarchicalPool, StealPolicy};
