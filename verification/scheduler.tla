------------------------------ MODULE scheduler ------------------------------
(***************************************************************************)
(* A TLA+ mirror of the executor protocol model checked (in Rust) by       *)
(* crates/nd-model: exactly-once task claiming via atomic dependency-      *)
(* counter decrement with self-resetting counters, a counting latch for    *)
(* run completion, and a first-fault-wins drain for cancellation.          *)
(*                                                                         *)
(* The transition system below corresponds action-for-action to            *)
(* nd_model::model (which in turn mirrors nd_runtime::dataflow's           *)
(* run_graph_task at the granularity of its atomics); NOTATION.md carries  *)
(* the three-way mapping between this spec, the Rust model, and the        *)
(* implementation.  The spec is a documentation artifact: CI runs the Rust *)
(* explorer (the `verify-model` job), not TLC, because the container has   *)
(* no TLA+ toolchain — the Rust model additionally covers work-stealing    *)
(* deque order and torn-slot detection, which are elided here to keep the  *)
(* core claim/drain protocol legible.                                      *)
(*                                                                         *)
(* Model-check with TLC (if available) using e.g.                          *)
(*   Tasks     <- 0..3                                                     *)
(*   Workers   <- {"w0", "w1"}                                             *)
(*   Succs     <- [t \in 0..3 |-> IF t = 0 THEN {1, 2}                     *)
(*                                ELSE IF t \in {1, 2} THEN {3} ELSE {}]   *)
(*   FaultTask <- 1  (or -1 for a clean run)                               *)
(*   Runs      <- 2                                                        *)
(***************************************************************************)

EXTENDS Naturals, FiniteSets

CONSTANTS
    Tasks,      \* the task indices of one compiled graph, e.g. 0..3
    Workers,    \* the pool's worker identities
    Succs,      \* [Tasks -> SUBSET Tasks]: the CSR successor arena
    FaultTask,  \* task whose work panics on run 0, or -1 for no fault
    Runs        \* back-to-back executions of the reusable graph (2 covers reset)

ASSUME /\ \A t \in Tasks : Succs[t] \subseteq Tasks /\ t \notin Succs[t]
ASSUME Runs \in {1, 2}

(* Initial predecessor counts — CompiledGraph::initial_preds. *)
InitPreds == [t \in Tasks |-> Cardinality({s \in Tasks : t \in Succs[s]})]

Roots == {t \in Tasks : InitPreds[t] = 0}

VARIABLES
    pending,    \* [Tasks -> Nat]: the live atomic dependency counters
    claimed,    \* SUBSET Tasks: ghost — tasks whose claim has begun
    executed,   \* SUBSET Tasks: ghost — tasks whose work ran
    drained,    \* SUBSET Tasks: ghost — claims that skipped work (cancelled run)
    latch,      \* Nat: the run's CountLatch value
    latchZeroed,\* Nat: times the latch hit zero this run (must end at 1)
    cancelled,  \* BOOLEAN: FaultCell::cancelled
    faultFired, \* BOOLEAN: the injected fault has been consumed
    run,        \* 0..Runs-1: which execution of the reusable graph
    ready,      \* SUBSET Tasks: counter-zero tasks awaiting a worker
                \* (the union of the injector and every deque; the Rust model
                \*  additionally tracks per-deque order and steal ends)
    pc          \* [Workers -> program point], mirroring WorkerPc

vars == <<pending, claimed, executed, drained, latch, latchZeroed,
          cancelled, faultFired, run, ready, pc>>

(* Worker program points, as records tagged like nd_model's WorkerPc.      *)
Idle         == [phase |-> "idle"]
Claiming(t)  == [phase |-> "claiming", task |-> t]
Working(t)   == [phase |-> "working", task |-> t]
(* "finishing" folds the per-successor decrement loop: todo is the set of  *)
(* successors not yet decremented, first the tail-exec reservation.        *)
Finishing(t, todo, first) ==
    [phase |-> "finishing", task |-> t, todo |-> todo, first |-> first]

NoTask == -1

Init ==
    /\ pending = InitPreds
    /\ claimed = {} /\ executed = {} /\ drained = {}
    /\ latch = Cardinality(Tasks) /\ latchZeroed = 0
    /\ cancelled = FALSE /\ faultFired = FALSE
    /\ run = 0
    /\ ready = Roots
    /\ pc = [w \in Workers |-> Idle]

(* -- Take: a worker picks any ready task (deque pop, injector take, and   *)
(*    steal are all instances; the Rust model distinguishes them).         *)
Take(w, t) ==
    /\ pc[w].phase = "idle"
    /\ t \in ready
    /\ ready' = ready \ {t}
    /\ pc' = [pc EXCEPT ![w] = Claiming(t)]
    /\ UNCHANGED <<pending, claimed, executed, drained, latch, latchZeroed,
                   cancelled, faultFired, run>>

(* -- Claim: the protocol's commit point.  The safety checks double-claim  *)
(*    and claim-of-unready live in the invariants below; the claim itself  *)
(*    restores the task's counter (the self-resetting discipline) and      *)
(*    consults the fault gate: a cancelled run drains (full protocol, no   *)
(*    work).                                                               *)
ClaimLive(w) ==
    /\ pc[w].phase = "claiming"
    /\ ~cancelled
    /\ LET t == pc[w].task IN
       /\ claimed' = claimed \union {t}
       /\ pending' = [pending EXCEPT ![t] = InitPreds[t]]
       /\ pc' = [pc EXCEPT ![w] = Working(t)]
    /\ UNCHANGED <<executed, drained, latch, latchZeroed, cancelled,
                   faultFired, run, ready>>

ClaimDrained(w) ==
    /\ pc[w].phase = "claiming"
    /\ cancelled
    /\ LET t == pc[w].task IN
       /\ claimed' = claimed \union {t}
       /\ pending' = [pending EXCEPT ![t] = InitPreds[t]]
       /\ drained' = drained \union {t}
       /\ pc' = [pc EXCEPT ![w] = Finishing(t, Succs[t], NoTask)]
    /\ UNCHANGED <<executed, latch, latchZeroed, cancelled, faultFired,
                   run, ready>>

(* -- DeadlineTrip: the RunBudget deadline may be observed blown at any    *)
(*    claim (nondeterministically), cancelling the run first-fault-wins.   *)
DeadlineTrip(w) ==
    /\ pc[w].phase = "claiming"
    /\ ~cancelled /\ ~faultFired
    /\ cancelled' = TRUE /\ faultFired' = TRUE
    /\ LET t == pc[w].task IN
       /\ claimed' = claimed \union {t}
       /\ pending' = [pending EXCEPT ![t] = InitPreds[t]]
       /\ drained' = drained \union {t}
       /\ pc' = [pc EXCEPT ![w] = Finishing(t, Succs[t], NoTask)]
    /\ UNCHANGED <<executed, latch, latchZeroed, run, ready>>

(* -- Work: the task's body.  The injected fault (FaultTask, run 0) caught *)
(*    by the worker's unwind scope becomes a cancellation; otherwise the   *)
(*    task is executed.                                                    *)
Work(w) ==
    /\ pc[w].phase = "working"
    /\ LET t == pc[w].task
           panics == t = FaultTask /\ run = 0 /\ ~faultFired IN
       /\ executed' = IF panics THEN executed ELSE executed \union {t}
       /\ cancelled' = IF panics THEN TRUE ELSE cancelled
       /\ faultFired' = IF panics THEN TRUE ELSE faultFired
       /\ pc' = [pc EXCEPT ![w] = Finishing(t, Succs[t], NoTask)]
    /\ UNCHANGED <<pending, claimed, drained, latch, latchZeroed, run, ready>>

(* -- Decrement: one successor's fetch_sub.  The decrementer that takes a  *)
(*    counter to zero owns the wakeup: the first such successor is         *)
(*    reserved for inline tail-execution, the rest are published to ready. *)
Decrement(w, s) ==
    /\ pc[w].phase = "finishing"
    /\ s \in pc[w].todo
    /\ pending' = [pending EXCEPT ![s] = @ - 1]
    /\ LET t == pc[w].task
           nowReady == pending[s] = 1
           keepFirst == nowReady /\ pc[w].first = NoTask IN
       /\ ready' = IF nowReady /\ ~keepFirst THEN ready \union {s} ELSE ready
       /\ pc' = [pc EXCEPT ![w] = Finishing(t, pc[w].todo \ {s},
                                            IF keepFirst THEN s ELSE pc[w].first)]
    /\ UNCHANGED <<claimed, executed, drained, latch, latchZeroed, cancelled,
                   faultFired, run>>

(* -- CountDown: latch.count_down() after the last decrement, then inline  *)
(*    tail-execution of the reserved successor (drained claims tail-exec   *)
(*    too — the drain must visit every task).                              *)
CountDown(w) ==
    /\ pc[w].phase = "finishing"
    /\ pc[w].todo = {}
    /\ latch' = latch - 1
    /\ latchZeroed' = IF latch = 1 THEN latchZeroed + 1 ELSE latchZeroed
    /\ pc' = [pc EXCEPT ![w] =
                IF pc[w].first = NoTask THEN Idle ELSE Claiming(pc[w].first)]
    /\ UNCHANGED <<pending, claimed, executed, drained, cancelled,
                   faultFired, run, ready>>

(* -- Reset: the external thread observes the latch released and re-arms   *)
(*    the reusable graph (PersistentRun / ReusableGraph::execute again).   *)
Quiescent ==
    /\ claimed = Tasks
    /\ ready = {}
    /\ \A w \in Workers : pc[w].phase = "idle"

Reset ==
    /\ run + 1 < Runs
    /\ Quiescent
    /\ run' = run + 1
    /\ claimed' = {} /\ executed' = {} /\ drained' = {}
    /\ latch' = Cardinality(Tasks) /\ latchZeroed' = 0
    /\ cancelled' = FALSE
    /\ ready' = Roots
    /\ pc' = [w \in Workers |-> Idle]
    /\ UNCHANGED <<pending, faultFired>>

Next ==
    \/ \E w \in Workers :
        \/ \E t \in ready : Take(w, t)
        \/ ClaimLive(w) \/ ClaimDrained(w) \/ DeadlineTrip(w)
        \/ Work(w)
        \/ \E s \in Tasks : Decrement(w, s)
        \/ CountDown(w)
    \/ Reset

Spec == Init /\ [][Next]_vars /\ WF_vars(Next)

-----------------------------------------------------------------------------
(* Safety.                                                                 *)

(* Exactly-once: a task on the ready set (or held by a worker) is never    *)
(* already claimed, and no two workers hold the same task — the model's    *)
(* DoubleClaim / ClaimUnready checks.                                      *)
Held(w) == IF pc[w].phase \in {"claiming", "working", "finishing"}
           THEN {pc[w].task} ELSE {}

NoDoubleClaim ==
    /\ \A t \in ready : t \notin claimed
    /\ \A w1, w2 \in Workers :
        w1 # w2 => Held(w1) \cap Held(w2) = {}

(* A task only becomes claimable when its counter is zero.                 *)
NoUnreadyClaim ==
    \A w \in Workers : pc[w].phase = "claiming" => pending[pc[w].task] = 0

(* Counters never underflow.                                              *)
NoCounterUnderflow == \A t \in Tasks : pending[t] >= 0

(* The latch never counts below zero and zeroes at most once per run.      *)
LatchSafe == latch >= 0 /\ latchZeroed <= 1

(* At quiescence the counters are bit-restored (the self-resetting         *)
(* discipline) and the latch has released exactly once — including on      *)
(* cancelled/drained runs.                                                 *)
QuiescenceClean ==
    Quiescent => /\ pending = InitPreds
                 /\ latch = 0
                 /\ latchZeroed = 1
                 /\ claimed = executed \union drained \union
                        (IF faultFired /\ FaultTask \in claimed
                         THEN {FaultTask} ELSE {})

Safety == NoDoubleClaim /\ NoUnreadyClaim /\ NoCounterUnderflow
          /\ LatchSafe /\ QuiescenceClean

-----------------------------------------------------------------------------
(* Liveness (checked by the Rust explorer as terminal-state vetting: the   *)
(* transition graph is acyclic, so "eventually" is "in every terminal      *)
(* state").                                                                *)

(* Every ready strand is eventually claimed; the drain terminates: every   *)
(* run — faulted or not — ends with all tasks claimed and the latch        *)
(* released.                                                               *)
EventuallyAllClaimed == <>(claimed = Tasks /\ latch = 0)

EveryTaskClaimed == \A t \in Tasks : <>(t \in claimed)

Liveness == EventuallyAllClaimed /\ EveryTaskClaimed

-----------------------------------------------------------------------------
THEOREM Spec => [](Safety)
THEOREM Spec => Liveness

=============================================================================
